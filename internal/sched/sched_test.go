package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/clock"
)

// eventually polls cond until it holds or the deadline passes.
func eventually(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func jobByID(s *Scheduler, id int64) (Job, bool) {
	for _, j := range s.Jobs() {
		if j.ID == id {
			return j, true
		}
	}
	return Job{}, false
}

func TestBoundedParallelism(t *testing.T) {
	const workers = 4
	var inflight, peak int32
	release := make(chan struct{})
	s := New(Config{Workers: workers}, func(ctx context.Context, url string) error {
		cur := atomic.AddInt32(&inflight, 1)
		for {
			old := atomic.LoadInt32(&peak)
			if cur <= old || atomic.CompareAndSwapInt32(&peak, old, cur) {
				break
			}
		}
		<-release
		atomic.AddInt32(&inflight, -1)
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	var tickets []*Ticket
	for i := 0; i < 8; i++ {
		tk, err := s.Submit(fmt.Sprintf("http://e%d/sparql", i), Routine)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// the pool saturates at exactly Workers concurrent jobs
	eventually(t, "pool saturation", func() bool { return atomic.LoadInt32(&inflight) == workers })
	if m := s.Metrics(); m.Running != workers {
		t.Fatalf("Running = %d, want %d", m.Running, workers)
	}
	close(release)
	for _, tk := range tickets {
		st, err := tk.Wait(context.Background())
		if st != StateSucceeded || err != nil {
			t.Fatalf("job %d: state %s err %v", tk.ID(), st, err)
		}
	}
	if got := atomic.LoadInt32(&peak); got != workers {
		t.Fatalf("peak parallelism = %d, want %d", got, workers)
	}
	m := s.Metrics()
	if m.Submitted != 8 || m.Succeeded != 8 || m.Failed != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.LatencyCount != 8 || m.LatencyMaxMs <= 0 {
		t.Fatalf("latency metrics = %+v", m)
	}
}

func TestManualPriorityBeatsRoutine(t *testing.T) {
	gate := make(chan struct{})
	var mu sync.Mutex
	var order []string
	s := New(Config{Workers: 1}, func(ctx context.Context, url string) error {
		mu.Lock()
		order = append(order, url)
		mu.Unlock()
		if url == "http://gate/sparql" {
			<-gate
		}
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	// occupy the single worker, then queue a routine refresh before a
	// manual submission: the manual one must dispatch first
	first, _ := s.Submit("http://gate/sparql", Routine)
	eventually(t, "gate job running", func() bool {
		j, ok := jobByID(s, first.ID())
		return ok && j.State == StateRunning
	})
	routine, _ := s.Submit("http://routine/sparql", Routine)
	manual, _ := s.Submit("http://manual/sparql", Manual)
	close(gate)
	for _, tk := range []*Ticket{first, routine, manual} {
		if st, err := tk.Wait(context.Background()); st != StateSucceeded || err != nil {
			t.Fatalf("job %d: state %s err %v", tk.ID(), st, err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"http://gate/sparql", "http://manual/sparql", "http://routine/sparql"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order = %v, want %v", order, want)
		}
	}
}

func TestRetryBackoffSequencing(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	var mu sync.Mutex
	var attempts []time.Time
	fails := 2
	s := New(Config{
		Workers: 2,
		Clock:   ck,
		Retry:   RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Minute, MaxBackoff: 10 * time.Minute},
	}, func(ctx context.Context, url string) error {
		mu.Lock()
		attempts = append(attempts, ck.Now())
		n := len(attempts)
		mu.Unlock()
		if n <= fails {
			return errors.New("transient outage")
		}
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	tk, err := s.Submit("http://flaky/sparql", Routine)
	if err != nil {
		t.Fatal(err)
	}
	// attempt 1 fails immediately; the job parks until now+1m
	eventually(t, "job waiting on first backoff", func() bool {
		j, ok := jobByID(s, tk.ID())
		return ok && j.State == StateWaiting
	})
	j, _ := jobByID(s, tk.ID())
	if got := j.ReadyAt.Sub(attempts[0]); got != time.Minute {
		t.Fatalf("first backoff = %v, want 1m", got)
	}
	// advancing part of the backoff must not dispatch; the later
	// attempt-gap assertions would catch an early dispatch
	ck.Advance(30 * time.Second)
	s.Kick()
	ck.Advance(30 * time.Second)
	s.Kick()
	eventually(t, "second attempt", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(attempts) >= 2
	})
	eventually(t, "job waiting on second backoff", func() bool {
		j, ok := jobByID(s, tk.ID())
		return ok && j.State == StateWaiting
	})
	// backoff doubles: the second retry waits 2m
	ck.Advance(2 * time.Minute)
	s.Kick()
	if st, err := tk.Wait(context.Background()); st != StateSucceeded || err != nil {
		t.Fatalf("state %s err %v", st, err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(attempts) != 3 {
		t.Fatalf("attempts = %d, want 3", len(attempts))
	}
	if gap := attempts[1].Sub(attempts[0]); gap != time.Minute {
		t.Fatalf("gap 1→2 = %v, want 1m", gap)
	}
	if gap := attempts[2].Sub(attempts[1]); gap != 2*time.Minute {
		t.Fatalf("gap 2→3 = %v, want 2m", gap)
	}
	if m := s.Metrics(); m.Retries != 2 || m.Succeeded != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRetryExhaustionFails(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	boom := errors.New("hard down")
	s := New(Config{
		Workers: 1,
		Clock:   ck,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Second},
	}, func(ctx context.Context, url string) error { return boom })
	s.Start(context.Background())
	defer s.Stop()
	tk, _ := s.Submit("http://dead/sparql", Routine)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
				ck.Advance(time.Second)
				s.Kick()
				time.Sleep(time.Millisecond)
			}
			if j, ok := jobByID(s, tk.ID()); ok && j.State.Terminal() {
				return
			}
		}
	}()
	st, err := tk.Wait(context.Background())
	<-done
	if st != StateFailed || !errors.Is(err, boom) {
		t.Fatalf("state %s err %v", st, err)
	}
	j, _ := jobByID(s, tk.ID())
	if j.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", j.Attempts)
	}
}

func TestRetryableHookStopsRetry(t *testing.T) {
	s := New(Config{
		Workers:   1,
		Retry:     RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond},
		Retryable: func(url string, attempts int) bool { return false },
	}, func(ctx context.Context, url string) error { return errors.New("down") })
	s.Start(context.Background())
	defer s.Stop()
	tk, _ := s.Submit("http://given-up/sparql", Routine)
	st, _ := tk.Wait(context.Background())
	if st != StateFailed {
		t.Fatalf("state = %s", st)
	}
	if j, _ := jobByID(s, tk.ID()); j.Attempts != 1 {
		t.Fatalf("attempts = %d, want 1 (hook vetoed retry)", j.Attempts)
	}
}

func TestDrainOnCancellation(t *testing.T) {
	release := make(chan struct{})
	var started int32
	s := New(Config{Workers: 2}, func(ctx context.Context, url string) error {
		atomic.AddInt32(&started, 1)
		<-release
		return nil
	})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	var tickets []*Ticket
	for i := 0; i < 5; i++ {
		tk, err := s.Submit(fmt.Sprintf("http://d%d/sparql", i), Routine)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	eventually(t, "two jobs running", func() bool { return atomic.LoadInt32(&started) == 2 })
	cancel()
	close(release)
	s.Stop()
	// the two in-flight jobs ran to completion; the queued three were
	// discarded as canceled — none left running or queued
	var succeeded, canceled int
	for _, tk := range tickets {
		switch st, err := tk.Wait(context.Background()); st {
		case StateSucceeded:
			succeeded++
		case StateCanceled:
			canceled++
			if !errors.Is(err, ErrCanceled) {
				t.Fatalf("canceled job err = %v", err)
			}
		default:
			t.Fatalf("job %d: state %s", tk.ID(), st)
		}
	}
	if succeeded != 2 || canceled != 3 {
		t.Fatalf("succeeded %d canceled %d, want 2 and 3", succeeded, canceled)
	}
	m := s.Metrics()
	if m.Running != 0 || m.Queued != 0 || m.Waiting != 0 {
		t.Fatalf("queues not drained: %+v", m)
	}
	if _, err := s.Submit("http://late/sparql", Routine); !errors.Is(err, ErrStopped) {
		t.Fatalf("submit after stop: err = %v", err)
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain after stop: %v", err)
	}
}

func TestRateLimitPerEndpoint(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	s := New(Config{
		Workers: 4,
		Clock:   ck,
		Rate:    RateLimit{PerSecond: 1, Burst: 1},
	}, func(ctx context.Context, url string) error { return nil })
	s.Start(context.Background())
	defer s.Stop()
	hot := "http://hot/sparql"
	// Submit serially: the scheduler dedups active jobs per URL, so the
	// next job for the same endpoint is submitted once the previous one
	// finished (still rate-limited by the token bucket).
	var cold *Ticket
	var hotIDs []int64
	for i := 0; i < 3; i++ {
		tk, err := s.Submit(hot, Routine)
		if err != nil {
			t.Fatal(err)
		}
		hotIDs = append(hotIDs, tk.ID())
		if i == 0 {
			// a different endpoint is not throttled by hot's bucket
			cold, _ = s.Submit("http://cold/sparql", Routine)
		}
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				if j, ok := jobByID(s, tk.ID()); ok && j.State.Terminal() {
					return
				}
				ck.Advance(250 * time.Millisecond)
				s.Kick()
				time.Sleep(time.Millisecond)
			}
		}()
		if st, err := tk.Wait(context.Background()); st != StateSucceeded || err != nil {
			t.Fatalf("hot job %d: state %s err %v", i, st, err)
		}
		<-done
	}
	if st, err := cold.Wait(context.Background()); st != StateSucceeded || err != nil {
		t.Fatalf("cold job: state %s err %v", st, err)
	}
	// Timing is asserted on StartedAt: the dispatch timestamp taken
	// when the token is consumed (runner-side clock reads race the
	// advancing goroutine and would skew the measurement).
	var hotStarts []time.Time
	for i, id := range hotIDs {
		j, ok := jobByID(s, id)
		if !ok {
			t.Fatalf("hot job %d evicted", i)
		}
		hotStarts = append(hotStarts, j.StartedAt)
	}
	// 1 token/s with burst 1: successive dispatches to the same
	// endpoint are at least a second apart on the simulated clock
	// (minus a float-rounding hair from the token arithmetic)
	for i := 1; i < len(hotStarts); i++ {
		if gap := hotStarts[i].Sub(hotStarts[i-1]); gap < time.Second-time.Millisecond {
			t.Fatalf("dispatch gap %d = %v, want >= 1s", i, gap)
		}
	}
	// the cold endpoint ran on its own bucket, before hot's last job
	coldJob, ok := jobByID(s, cold.ID())
	if !ok {
		t.Fatal("cold job evicted")
	}
	if coldJob.StartedAt.After(hotStarts[2]) {
		t.Fatalf("cold dispatch %v waited for hot bucket (last hot %v)", coldJob.StartedAt, hotStarts[2])
	}
	if m := s.Metrics(); m.RateDeferred == 0 {
		t.Fatalf("metrics = %+v, want rate deferrals", m)
	}
}

func TestSubmitDedupsActiveURL(t *testing.T) {
	gate := make(chan struct{})
	s := New(Config{Workers: 1}, func(ctx context.Context, url string) error {
		if url == "http://gate/sparql" {
			<-gate
		}
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	blocker, _ := s.Submit("http://gate/sparql", Routine)
	eventually(t, "gate job running", func() bool {
		j, ok := jobByID(s, blocker.ID())
		return ok && j.State == StateRunning
	})
	a, _ := s.Submit("http://dup/sparql", Routine)
	b, _ := s.Submit("http://dup/sparql", Manual)
	if a.ID() != b.ID() {
		t.Fatalf("dup submit created a second job: %d vs %d", a.ID(), b.ID())
	}
	// the duplicate submission upgraded the queued job's priority
	if j, _ := jobByID(s, a.ID()); j.Priority != "manual" {
		t.Fatalf("priority = %s, want manual", j.Priority)
	}
	if m := s.Metrics(); m.Deduped != 1 || m.Submitted != 2 {
		t.Fatalf("metrics = %+v", m)
	}
	close(gate)
	if st, _ := a.Wait(context.Background()); st != StateSucceeded {
		t.Fatalf("state = %s", st)
	}
	// once terminal, the URL can be submitted again as a fresh job
	c, err := s.Submit("http://dup/sparql", Routine)
	if err != nil {
		t.Fatal(err)
	}
	if c.ID() == a.ID() {
		t.Fatal("terminal job not released from dedup index")
	}
	if st, _ := c.Wait(context.Background()); st != StateSucceeded {
		t.Fatalf("resubmit state = %s", st)
	}
}

// TestOnJobFailedFiresOncePerJob: the hook runs for the terminal
// failure only — not per attempt, not for successes.
func TestOnJobFailedFiresOncePerJob(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	var calls int32
	s := New(Config{
		Workers:     2,
		Clock:       ck,
		Retry:       RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Second},
		OnJobFailed: func(url string, err error) { atomic.AddInt32(&calls, 1) },
	}, func(ctx context.Context, url string) error {
		if url == "http://ok/sparql" {
			return nil
		}
		return errors.New("down")
	})
	s.Start(context.Background())
	defer s.Stop()
	okTk, _ := s.Submit("http://ok/sparql", Routine)
	badTk, _ := s.Submit("http://bad/sparql", Routine)
	stopAdvance := make(chan struct{})
	go func() {
		for {
			select {
			case <-stopAdvance:
				return
			default:
				ck.Advance(2 * time.Second)
				s.Kick()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	if st, _ := okTk.Wait(context.Background()); st != StateSucceeded {
		t.Fatalf("ok state = %s", st)
	}
	st, _ := badTk.Wait(context.Background())
	close(stopAdvance)
	if st != StateFailed {
		t.Fatalf("bad state = %s", st)
	}
	if j, _ := jobByID(s, badTk.ID()); j.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", j.Attempts)
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("OnJobFailed calls = %d, want 1 (three attempts, one terminal failure)", got)
	}
}

// TestSimClockRetryWithoutKick: a waiting job under a simulated clock
// must still dispatch once the clock is advanced, even if nobody calls
// Kick — the dispatcher polls rather than sleeping a simulated
// duration in wall time.
func TestSimClockRetryWithoutKick(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	var attempts int32
	s := New(Config{
		Workers: 1,
		Clock:   ck,
		Retry:   RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Hour},
	}, func(ctx context.Context, url string) error {
		if atomic.AddInt32(&attempts, 1) == 1 {
			return errors.New("transient")
		}
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	tk, _ := s.Submit("http://poll/sparql", Routine)
	eventually(t, "job parked", func() bool {
		j, ok := jobByID(s, tk.ID())
		return ok && j.State == StateWaiting
	})
	ck.Advance(time.Hour) // no Kick
	if st, err := tk.Wait(context.Background()); st != StateSucceeded || err != nil {
		t.Fatalf("state %s err %v", st, err)
	}
}

func TestRunnerPanicFailsJob(t *testing.T) {
	s := New(Config{Workers: 1}, func(ctx context.Context, url string) error {
		panic("extraction exploded")
	})
	s.Start(context.Background())
	defer s.Stop()
	tk, _ := s.Submit("http://boom/sparql", Routine)
	st, err := tk.Wait(context.Background())
	if st != StateFailed || err == nil {
		t.Fatalf("state %s err %v", st, err)
	}
}

func TestDrainWaitsForAll(t *testing.T) {
	var done int32
	s := New(Config{Workers: 3}, func(ctx context.Context, url string) error {
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&done, 1)
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	for i := 0; i < 9; i++ {
		if _, err := s.Submit(fmt.Sprintf("http://w%d/sparql", i), Routine); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	if atomic.LoadInt32(&done) != 9 {
		t.Fatalf("done = %d, want 9", done)
	}
	if m := s.Metrics(); m.Succeeded != 9 || m.Queued != 0 || m.Running != 0 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestDoneRingBounded(t *testing.T) {
	s := New(Config{Workers: 2, KeepDone: 5}, func(ctx context.Context, url string) error { return nil })
	s.Start(context.Background())
	defer s.Stop()
	for i := 0; i < 20; i++ {
		if _, err := s.Submit(fmt.Sprintf("http://r%d/sparql", i), Routine); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	jobs := s.Jobs()
	if len(jobs) != 5 {
		t.Fatalf("retained jobs = %d, want 5", len(jobs))
	}
	for _, j := range jobs {
		if j.State != StateSucceeded {
			t.Fatalf("retained job %d in state %s", j.ID, j.State)
		}
	}
	// the retained five are the most recent completions
	if jobs[len(jobs)-1].ID != 20 {
		t.Fatalf("newest retained id = %d, want 20", jobs[len(jobs)-1].ID)
	}
}

func TestOnJobSucceededFiresOncePerJob(t *testing.T) {
	var succeeded, failed int32
	s := New(Config{
		Workers:        2,
		OnJobSucceeded: func(url string) { atomic.AddInt32(&succeeded, 1) },
		OnJobFailed:    func(url string, err error) { atomic.AddInt32(&failed, 1) },
	}, func(ctx context.Context, url string) error {
		if url == "http://bad/sparql" {
			return errors.New("down")
		}
		return nil
	})
	s.Start(context.Background())
	defer s.Stop()
	okTk, _ := s.Submit("http://ok/sparql", Routine)
	badTk, _ := s.Submit("http://bad/sparql", Routine)
	if st, err := okTk.Wait(context.Background()); st != StateSucceeded || err != nil {
		t.Fatalf("ok job = %s, %v", st, err)
	}
	if st, _ := badTk.Wait(context.Background()); st != StateFailed {
		t.Fatalf("bad job = %s", st)
	}
	if got := atomic.LoadInt32(&succeeded); got != 1 {
		t.Fatalf("OnJobSucceeded calls = %d, want 1 (failed jobs must not fire it)", got)
	}
	if got := atomic.LoadInt32(&failed); got != 1 {
		t.Fatalf("OnJobFailed calls = %d, want 1", got)
	}
}
