package viz

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/extraction"
	"repro/internal/layout"
	"repro/internal/schema"
)

// The JSON view models mirror what the deployed tool ships to the
// browser for D3 to render. They make the layouts consumable by any
// client, not only the SVG renderer.

// TreemapModel is the JSON form of the Figure 4 treemap.
type TreemapModel struct {
	Dataset string        `json:"dataset"`
	Cells   []TreemapCell `json:"cells"`
}

// TreemapCell is one rectangle with its hierarchy context.
type TreemapCell struct {
	Label     string  `json:"label"`
	IRI       string  `json:"iri,omitempty"`
	Depth     int     `json:"depth"` // 0 dataset, 1 cluster, 2 class
	Cluster   int     `json:"cluster"`
	Instances float64 `json:"instances"`
	X         float64 `json:"x"`
	Y         float64 `json:"y"`
	W         float64 `json:"w"`
	H         float64 `json:"h"`
}

// TreemapModelOf computes the treemap geometry as data.
func TreemapModelOf(cs *cluster.Schema, s *schema.Summary, w, h float64) *TreemapModel {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	cells := layout.Treemap(root, layout.Rect{W: w, H: h}, 3)
	m := &TreemapModel{Dataset: cs.Dataset}
	for _, c := range cells {
		m.Cells = append(m.Cells, TreemapCell{
			Label: c.Node.Label, IRI: classIRI(c.Node.Ref),
			Depth: c.Depth, Cluster: cs.ClusterOf(c.Node.Ref),
			Instances: c.Node.Value,
			X:         c.Rect.X, Y: c.Rect.Y, W: c.Rect.W, H: c.Rect.H,
		})
	}
	return m
}

// SunburstModel is the JSON form of the Figure 5 sunburst.
type SunburstModel struct {
	Dataset string        `json:"dataset"`
	Arcs    []SunburstArc `json:"arcs"`
}

// SunburstArc is one ring slice.
type SunburstArc struct {
	Label   string  `json:"label"`
	IRI     string  `json:"iri,omitempty"`
	Depth   int     `json:"depth"`
	Cluster int     `json:"cluster"`
	Start   float64 `json:"start"`
	End     float64 `json:"end"`
	Inner   float64 `json:"inner"`
	Outer   float64 `json:"outer"`
}

// SunburstModelOf computes the sunburst geometry as data.
func SunburstModelOf(cs *cluster.Schema, s *schema.Summary, radius float64) *SunburstModel {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	m := &SunburstModel{Dataset: cs.Dataset}
	for _, a := range layout.Sunburst(root, radius) {
		m.Arcs = append(m.Arcs, SunburstArc{
			Label: a.Node.Label, IRI: classIRI(a.Node.Ref),
			Depth: a.Depth, Cluster: cs.ClusterOf(a.Node.Ref),
			Start: a.Start, End: a.End, Inner: a.Inner, Outer: a.Outer,
		})
	}
	return m
}

// CirclePackModel is the JSON form of the Figure 6 circle packing.
type CirclePackModel struct {
	Dataset string         `json:"dataset"`
	Circles []PackedCircle `json:"circles"`
}

// PackedCircle is one circle.
type PackedCircle struct {
	Label   string  `json:"label"`
	IRI     string  `json:"iri,omitempty"`
	Depth   int     `json:"depth"`
	Cluster int     `json:"cluster"`
	X       float64 `json:"x"`
	Y       float64 `json:"y"`
	R       float64 `json:"r"`
}

// CirclePackModelOf computes the circle packing geometry as data.
func CirclePackModelOf(cs *cluster.Schema, s *schema.Summary, size float64) *CirclePackModel {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	m := &CirclePackModel{Dataset: cs.Dataset}
	for _, pc := range layout.CirclePack(root, size/2, size/2, size/2-8, 3) {
		m.Circles = append(m.Circles, PackedCircle{
			Label: pc.Node.Label, IRI: classIRI(pc.Node.Ref),
			Depth: pc.Depth, Cluster: cs.ClusterOf(pc.Node.Ref),
			X: pc.Circle.X, Y: pc.Circle.Y, R: pc.Circle.R,
		})
	}
	return m
}

// classIRI filters out the synthetic cluster/dataset refs so only class
// IRIs appear in the models.
func classIRI(ref string) string {
	if ref == "" || len(ref) > 8 && ref[:8] == "cluster:" {
		return ""
	}
	return ref
}

// ClassDetail is the class panel of Figure 2 step 2: the attributes of a
// class and its incoming and outgoing properties with target classes and
// counts.
type ClassDetail struct {
	IRI       string                     `json:"iri"`
	Label     string                     `json:"label"`
	Instances int                        `json:"instances"`
	Cluster   int                        `json:"cluster"`
	Degree    int                        `json:"degree"`
	Attribs   []extraction.PropertyCount `json:"attributes"`
	Outgoing  []ClassLink                `json:"outgoing"`
	Incoming  []ClassLink                `json:"incoming"`
}

// ClassLink is one property arc seen from a class.
type ClassLink struct {
	Property string `json:"property"`
	Label    string `json:"label"`
	Other    string `json:"other"` // the class at the far end
	Count    int    `json:"count"`
}

// ClassDetailOf assembles the detail panel for a class.
func ClassDetailOf(cs *cluster.Schema, s *schema.Summary, classIRI string) (*ClassDetail, bool) {
	node, ok := s.NodeByIRI(classIRI)
	if !ok {
		return nil, false
	}
	d := &ClassDetail{
		IRI: node.IRI, Label: node.Label, Instances: node.Instances,
		Cluster: cs.ClusterOf(classIRI), Degree: s.Degree(classIRI),
		Attribs: node.Attributes,
	}
	for _, e := range s.Edges {
		if e.From == classIRI {
			d.Outgoing = append(d.Outgoing, ClassLink{
				Property: e.Property, Label: e.Label, Other: e.To, Count: e.Count,
			})
		}
		if e.To == classIRI && e.From != classIRI {
			d.Incoming = append(d.Incoming, ClassLink{
				Property: e.Property, Label: e.Label, Other: e.From, Count: e.Count,
			})
		}
	}
	sortLinks := func(ls []ClassLink) {
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].Property != ls[j].Property {
				return ls[i].Property < ls[j].Property
			}
			return ls[i].Other < ls[j].Other
		})
	}
	sortLinks(d.Outgoing)
	sortLinks(d.Incoming)
	return d, true
}
