// Package viz binds H-BOLD's data artifacts (Schema Summary, Cluster
// Schema, explorations) to the layout algorithms and renders them as SVG
// documents and JSON view models — the Go equivalent of the tool's
// D3-based presentation layer. One view constructor exists per paper
// figure: graph views for Figure 2, treemap (Figure 4), sunburst
// (Figure 5), circle packing (Figure 6) and hierarchical edge bundling
// with domain/range highlighting (Figure 7).
package viz

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/layout"
	"repro/internal/schema"
	"repro/internal/svg"
)

// Hierarchy builds the dataset→clusters→classes tree the hierarchical
// layouts (treemap, sunburst, circle pack, edge bundling) consume. Leaf
// values are instance counts; Ref carries class IRIs.
func Hierarchy(cs *cluster.Schema, s *schema.Summary) *layout.Tree {
	root := &layout.Tree{Label: datasetLabel(cs.Dataset), Ref: cs.Dataset}
	for _, c := range cs.Clusters {
		cn := &layout.Tree{Label: c.Label, Ref: "cluster:" + c.Label}
		for _, classIRI := range c.Classes {
			node, ok := s.NodeByIRI(classIRI)
			if !ok {
				continue
			}
			cn.Children = append(cn.Children, &layout.Tree{
				Label: node.Label,
				Value: float64(node.Instances),
				Ref:   classIRI,
			})
		}
		root.Children = append(root.Children, cn)
	}
	return root
}

func datasetLabel(url string) string {
	if url == "" {
		return "dataset"
	}
	return url
}

// clusterIndexByRef maps "cluster:<label>" refs back to cluster indexes
// for coloring.
func clusterColor(cs *cluster.Schema, classIRI string) string {
	return svg.Color(cs.ClusterOf(classIRI))
}

// --- Treemap (Figure 4) ---

// TreemapView renders the Cluster Schema treemap: each cluster is a
// colored rectangle with its classes nested inside, areas proportional
// to instance counts.
func TreemapView(cs *cluster.Schema, s *schema.Summary, w, h float64) string {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	cells := layout.Treemap(root, layout.Rect{X: 0, Y: 0, W: w, H: h}, 3)
	doc := svg.New(w, h)
	doc.Comment(fmt.Sprintf("Treemap of the Cluster Schema: %s", cs.Dataset))
	clusterIdx := map[string]int{}
	for i, c := range cs.Clusters {
		clusterIdx["cluster:"+c.Label] = i
	}
	currentCluster := 0
	for _, cell := range cells {
		switch cell.Depth {
		case 0:
			doc.Rect(cell.Rect.X, cell.Rect.Y, cell.Rect.W, cell.Rect.H, "#fafafa", "#999")
		case 1:
			if ci, ok := clusterIdx[cell.Node.Ref]; ok {
				currentCluster = ci
			}
			doc.Rect(cell.Rect.X, cell.Rect.Y, cell.Rect.W, cell.Rect.H,
				svg.Lighten(svg.Color(currentCluster), 0.6), "#444", "data-kind", "cluster")
			if cell.Rect.W > 60 && cell.Rect.H > 16 {
				doc.Text(cell.Rect.X+4, cell.Rect.Y+13, 12, "start", "#000", cell.Node.Label)
			}
		default:
			ci := cs.ClusterOf(cell.Node.Ref)
			doc.Rect(cell.Rect.X, cell.Rect.Y, cell.Rect.W, cell.Rect.H,
				svg.Lighten(svg.Color(ci), 0.25), "#fff", "data-kind", "class", "data-iri", cell.Node.Ref)
			if cell.Rect.W > 50 && cell.Rect.H > 14 {
				doc.Text(cell.Rect.X+3, cell.Rect.Y+12, 10, "start", "#111",
					fmt.Sprintf("%s (%.0f)", cell.Node.Label, cell.Node.Value))
			}
		}
	}
	return doc.String()
}

// --- Sunburst (Figure 5) ---

// SunburstView renders the Cluster Schema sunburst: inner ring clusters,
// outer ring classes grouped by cluster.
func SunburstView(cs *cluster.Schema, s *schema.Summary, size float64) string {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	radius := size/2 - 10
	arcs := layout.Sunburst(root, radius)
	cx, cy := size/2, size/2
	doc := svg.New(size, size)
	doc.Comment(fmt.Sprintf("Sunburst of the Cluster Schema: %s", cs.Dataset))
	clusterIdx := map[string]int{}
	for i, c := range cs.Clusters {
		clusterIdx["cluster:"+c.Label] = i
	}
	for _, a := range arcs {
		var fill string
		if a.Depth == 1 {
			fill = svg.Color(clusterIdx[a.Node.Ref])
		} else {
			fill = svg.Lighten(clusterColor(cs, a.Node.Ref), 0.35)
		}
		doc.Arc(cx, cy, a.Start, a.End, a.Inner, a.Outer, fill, "#fff",
			"data-label", a.Node.Label)
		if a.Span() > 0.12 {
			p := layout.ArcPoint(cx, cy, a.Mid(), (a.Inner+a.Outer)/2)
			doc.Text(p.X, p.Y, 9, "middle", "#000", a.Node.Label)
		}
	}
	return doc.String()
}

// --- Circle packing (Figure 6) ---

// CirclePackView renders the Cluster Schema circle packing: the external
// circle is the dataset, intermediate circles the clusters, inner
// circles the classes.
func CirclePackView(cs *cluster.Schema, s *schema.Summary, size float64) string {
	root := Hierarchy(cs, s)
	root.SortChildrenByValue()
	circles := layout.CirclePack(root, size/2, size/2, size/2-8, 3)
	doc := svg.New(size, size)
	doc.Comment(fmt.Sprintf("Circle packing of the Cluster Schema: %s", cs.Dataset))
	clusterIdx := map[string]int{}
	for i, c := range cs.Clusters {
		clusterIdx["cluster:"+c.Label] = i
	}
	for _, pc := range circles {
		switch pc.Depth {
		case 0:
			doc.Circle(pc.Circle.X, pc.Circle.Y, pc.Circle.R, "#f5f5f5", "#888")
		case 1:
			doc.Circle(pc.Circle.X, pc.Circle.Y, pc.Circle.R,
				svg.Lighten(svg.Color(clusterIdx[pc.Node.Ref]), 0.6), "#555",
				"data-kind", "cluster")
		default:
			doc.Circle(pc.Circle.X, pc.Circle.Y, pc.Circle.R,
				svg.Lighten(clusterColor(cs, pc.Node.Ref), 0.2), "#fff",
				"data-kind", "class", "data-iri", pc.Node.Ref)
			if pc.Circle.R > 14 {
				doc.Text(pc.Circle.X, pc.Circle.Y+3, 9, "middle", "#000", pc.Node.Label)
			}
		}
	}
	return doc.String()
}

// --- Hierarchical edge bundling (Figure 7) ---

// BundleView renders the Schema Summary as a hierarchical edge bundling
// diagram. When focus is a class IRI, the view reproduces Figure 7's
// highlighting: the focus class bold, rdfs:Range classes of its outgoing
// properties in green, and rdfs:Domain classes of properties pointing at
// it in red.
func BundleView(cs *cluster.Schema, s *schema.Summary, focus string, size float64) string {
	root := Hierarchy(cs, s)
	var adjacency [][2]string
	for _, e := range s.Edges {
		if e.From == e.To {
			continue
		}
		adjacency = append(adjacency, [2]string{e.From, e.To})
	}
	radius := size/2 - 70
	eb := layout.Bundle(root, adjacency, size/2, size/2, radius, 0.85, 48)

	// classify neighbors of the focus class
	rangeOf := map[string]bool{}  // green: ranges of properties from focus
	domainOf := map[string]bool{} // red: domains of properties into focus
	if focus != "" {
		for _, e := range s.Edges {
			if e.From == focus && e.To != focus {
				rangeOf[e.To] = true
			}
			if e.To == focus && e.From != focus {
				domainOf[e.From] = true
			}
		}
	}

	doc := svg.New(size, size)
	doc.Comment(fmt.Sprintf("Hierarchical edge bundling of the Schema Summary: %s (focus %s)", s.Dataset, focus))
	for _, e := range eb.Edges {
		fromIRI := eb.Leaves[e.From].Node.Ref
		toIRI := eb.Leaves[e.To].Node.Ref
		color, width, opacity := "#9ab", 0.8, "0.45"
		if focus != "" {
			switch {
			case fromIRI == focus:
				color, width, opacity = "#2ca02c", 1.6, "0.9" // towards ranges
			case toIRI == focus:
				color, width, opacity = "#d62728", 1.6, "0.9" // from domains
			}
		}
		flat := make([]float64, 0, 2*len(e.Points))
		for _, p := range e.Points {
			flat = append(flat, p.X, p.Y)
		}
		doc.Polyline(flat, color, width, "opacity", opacity)
	}
	for _, l := range eb.Leaves {
		iri := l.Node.Ref
		color, weight := "#333", "normal"
		switch {
		case iri == focus:
			color, weight = "#000", "bold"
		case rangeOf[iri]:
			color = "#2ca02c"
		case domainOf[iri]:
			color = "#d62728"
		}
		// offset labels slightly outside the circle, rotated anchor by side
		lp := layout.ArcPoint(size/2, size/2, l.Angle, radius+10)
		anchor := "start"
		if lp.X < size/2 {
			anchor = "end"
		}
		doc.Text(lp.X, lp.Y+3, 10, anchor, color, l.Node.Label, "font-weight", weight)
		doc.Circle(l.Pos.X, l.Pos.Y, 2.5, color, "none")
	}
	return doc.String()
}

// --- Graph views (Figure 2) ---

// ClusterGraphView renders the Cluster Schema as a node-link diagram:
// nodes are clusters (sized by instances), arcs are inter-cluster
// connections — Figure 2 step 1.
func ClusterGraphView(cs *cluster.Schema, size float64) string {
	nodes := make([]layout.ForceNode, len(cs.Clusters))
	for i, c := range cs.Clusters {
		nodes[i] = layout.ForceNode{Label: c.Label, Ref: c.Label, Size: float64(c.Instances)}
	}
	edges := make([]layout.ForceEdge, len(cs.Edges))
	for i, e := range cs.Edges {
		edges[i] = layout.ForceEdge{From: e.From, To: e.To, Weight: float64(e.Links)}
	}
	placed := layout.ForceLayout(nodes, edges, layout.ForceConfig{Width: size, Height: size, Seed: 42})
	doc := svg.New(size, size)
	doc.Comment(fmt.Sprintf("Cluster Schema graph: %s (%d clusters)", cs.Dataset, len(cs.Clusters)))
	for _, e := range cs.Edges {
		a, b := placed[e.From].Pos, placed[e.To].Pos
		doc.Line(a.X, a.Y, b.X, b.Y, "#bbb", 1+float64(e.Links)/4)
	}
	maxInst := 1.0
	for _, n := range placed {
		if n.Size > maxInst {
			maxInst = n.Size
		}
	}
	for i, n := range placed {
		r := 12 + 28*sqrtRatio(n.Size, maxInst)
		doc.Circle(n.Pos.X, n.Pos.Y, r, svg.Lighten(svg.Color(i), 0.3), "#333")
		doc.Text(n.Pos.X, n.Pos.Y+4, 11, "middle", "#000", n.Label)
	}
	return doc.String()
}

// SummaryGraphView renders a (possibly partial) Schema Summary as a
// node-link diagram — Figure 2 steps 2–4. visible selects the classes to
// draw (nil = all); the header line reports nodes shown and instance
// coverage, as the tool does.
func SummaryGraphView(s *schema.Summary, visible map[string]bool, size float64) string {
	if visible == nil {
		visible = map[string]bool{}
		for _, n := range s.Nodes {
			visible[n.IRI] = true
		}
	}
	var shown []schema.Node
	idx := map[string]int{}
	for _, n := range s.Nodes {
		if visible[n.IRI] {
			idx[n.IRI] = len(shown)
			shown = append(shown, n)
		}
	}
	nodes := make([]layout.ForceNode, len(shown))
	for i, n := range shown {
		nodes[i] = layout.ForceNode{Label: n.Label, Ref: n.IRI, Size: float64(n.Instances)}
	}
	var edges []layout.ForceEdge
	for _, e := range s.EdgesBetween(visible) {
		edges = append(edges, layout.ForceEdge{From: idx[e.From], To: idx[e.To], Weight: float64(e.Count)})
	}
	placed := layout.ForceLayout(nodes, edges, layout.ForceConfig{Width: size, Height: size, Seed: 7})

	doc := svg.New(size, size)
	coverage := s.CoveragePercent(visible)
	doc.Comment(fmt.Sprintf("Schema Summary graph: %s", s.Dataset))
	doc.Text(10, 18, 13, "start", "#333",
		fmt.Sprintf("%d classes shown — %.1f%% of instances", len(shown), coverage))
	for _, e := range s.EdgesBetween(visible) {
		a, b := placed[idx[e.From]].Pos, placed[idx[e.To]].Pos
		doc.Line(a.X, a.Y, b.X, b.Y, "#ccc", 1)
	}
	maxInst := 1.0
	for _, n := range placed {
		if n.Size > maxInst {
			maxInst = n.Size
		}
	}
	for _, n := range placed {
		r := 8 + 20*sqrtRatio(n.Size, maxInst)
		doc.Circle(n.Pos.X, n.Pos.Y, r, "#9ecae1", "#3182bd", "data-iri", n.Ref)
		doc.Text(n.Pos.X, n.Pos.Y-r-3, 10, "middle", "#111", n.Label)
	}
	return doc.String()
}

func sqrtRatio(v, max float64) float64 {
	if max <= 0 || v <= 0 {
		return 0
	}
	// sqrt so area, not radius, tracks the value
	return math.Sqrt(v / max)
}
