package viz

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/synth"
)

func TestTreemapModel(t *testing.T) {
	cs, s := artifacts(t)
	m := TreemapModelOf(cs, s, 1000, 700)
	if m.Dataset != cs.Dataset {
		t.Fatal("dataset missing")
	}
	// one cell per hierarchy node
	want := 1 + cs.NumClusters() + s.NumClasses()
	if len(m.Cells) != want {
		t.Fatalf("cells = %d, want %d", len(m.Cells), want)
	}
	classArea := 0.0
	for _, c := range m.Cells {
		if c.Depth == 2 {
			classArea += c.W * c.H
			if c.IRI == "" {
				t.Fatal("class cell without IRI")
			}
			if c.Cluster < 0 {
				t.Fatalf("class cell %s without cluster", c.Label)
			}
		}
		if c.Depth == 1 && c.IRI != "" {
			t.Fatal("cluster cell must not carry a class IRI")
		}
	}
	// class cells tile most of the root (minus padding)
	if classArea < 0.8*1000*700 {
		t.Fatalf("class area = %v", classArea)
	}
	// and the model serializes
	if _, err := json.Marshal(m); err != nil {
		t.Fatal(err)
	}
}

func TestSunburstModel(t *testing.T) {
	cs, s := artifacts(t)
	m := SunburstModelOf(cs, s, 400)
	clusters, classes := 0, 0
	spanByDepth := map[int]float64{}
	for _, a := range m.Arcs {
		spanByDepth[a.Depth] += a.End - a.Start
		switch a.Depth {
		case 1:
			clusters++
		case 2:
			classes++
		}
	}
	if clusters != cs.NumClusters() || classes != s.NumClasses() {
		t.Fatalf("arcs = %d clusters, %d classes", clusters, classes)
	}
	if math.Abs(spanByDepth[1]-2*math.Pi) > 1e-6 {
		t.Fatalf("cluster ring incomplete: %v", spanByDepth[1])
	}
}

func TestCirclePackModel(t *testing.T) {
	cs, s := artifacts(t)
	m := CirclePackModelOf(cs, s, 800)
	if len(m.Circles) != 1+cs.NumClusters()+s.NumClasses() {
		t.Fatalf("circles = %d", len(m.Circles))
	}
	if m.Circles[0].Depth != 0 || m.Circles[0].R < 300 {
		t.Fatalf("root circle = %+v", m.Circles[0])
	}
}

func TestClassDetail(t *testing.T) {
	cs, s := artifacts(t)
	event := synth.ScholarlyNS + "Event"
	d, ok := ClassDetailOf(cs, s, event)
	if !ok {
		t.Fatal("Event not found")
	}
	if d.Label != "Event" || d.Instances != 150 {
		t.Fatalf("detail = %+v", d)
	}
	if len(d.Attribs) != 3 {
		t.Fatalf("attributes = %v", d.Attribs)
	}
	// Figure 7 relations: outgoing hasSituation, incoming from Vevent etc.
	foundOut, foundIn := false, false
	for _, l := range d.Outgoing {
		if l.Label == "hasSituation" && l.Other == synth.ScholarlyNS+"Situation" {
			foundOut = true
			if l.Count <= 0 {
				t.Fatal("outgoing count missing")
			}
		}
	}
	for _, l := range d.Incoming {
		if l.Other == synth.ScholarlyNS+"Vevent" {
			foundIn = true
		}
	}
	if !foundOut || !foundIn {
		t.Fatalf("links missing: out=%v in=%v (%+v)", foundOut, foundIn, d)
	}
	if d.Degree < len(d.Outgoing)+len(d.Incoming) {
		t.Fatalf("degree %d < %d links", d.Degree, len(d.Outgoing)+len(d.Incoming))
	}
	if _, ok := ClassDetailOf(cs, s, "http://nope"); ok {
		t.Fatal("unknown class should miss")
	}
}

func TestModelsDeterministic(t *testing.T) {
	cs, s := artifacts(t)
	a, _ := json.Marshal(TreemapModelOf(cs, s, 500, 400))
	b, _ := json.Marshal(TreemapModelOf(cs, s, 500, 400))
	if string(a) != string(b) {
		t.Fatal("treemap model not deterministic")
	}
	c, _ := json.Marshal(SunburstModelOf(cs, s, 300))
	d, _ := json.Marshal(SunburstModelOf(cs, s, 300))
	if string(c) != string(d) {
		t.Fatal("sunburst model not deterministic")
	}
}
