package viz

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/schema"
	"repro/internal/synth"
)

func artifacts(t testing.TB) (*cluster.Schema, *schema.Summary) {
	t.Helper()
	st := synth.Scholarly(1)
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "scholarly", time.Now())
	if err != nil {
		t.Fatal(err)
	}
	s := schema.Build(ix)
	cs, err := cluster.Build(s, cluster.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return cs, s
}

func TestHierarchyShape(t *testing.T) {
	cs, s := artifacts(t)
	root := Hierarchy(cs, s)
	if len(root.Children) != cs.NumClusters() {
		t.Fatalf("clusters = %d, want %d", len(root.Children), cs.NumClusters())
	}
	if len(root.Leaves()) != s.NumClasses() {
		t.Fatalf("leaves = %d, want %d", len(root.Leaves()), s.NumClasses())
	}
	// leaf values are instance counts
	total := 0.0
	for _, l := range root.Leaves() {
		total += l.Value
	}
	if int(total) != s.TotalInstances {
		t.Fatalf("leaf values sum %v, want %d", total, s.TotalInstances)
	}
}

func validSVG(t *testing.T, out string) {
	t.Helper()
	if !strings.HasPrefix(out, `<svg xmlns="http://www.w3.org/2000/svg"`) {
		t.Fatalf("not an svg document: %.80s", out)
	}
	if !strings.HasSuffix(strings.TrimSpace(out), "</svg>") {
		t.Fatal("unterminated svg")
	}
	if strings.Count(out, "<") < 10 {
		t.Fatal("suspiciously empty svg")
	}
}

func TestTreemapView(t *testing.T) {
	cs, s := artifacts(t)
	out := TreemapView(cs, s, 1000, 700)
	validSVG(t, out)
	if !strings.Contains(out, `data-kind="cluster"`) || !strings.Contains(out, `data-kind="class"`) {
		t.Fatal("treemap missing cluster/class cells")
	}
	// the biggest class shows its instance count
	if !strings.Contains(out, "Person (1200)") {
		t.Fatal("Person cell label missing")
	}
}

func TestSunburstView(t *testing.T) {
	cs, s := artifacts(t)
	out := SunburstView(cs, s, 800)
	validSVG(t, out)
	if strings.Count(out, "<path") < s.NumClasses() {
		t.Fatalf("sunburst has too few arcs: %d", strings.Count(out, "<path"))
	}
}

func TestCirclePackView(t *testing.T) {
	cs, s := artifacts(t)
	out := CirclePackView(cs, s, 800)
	validSVG(t, out)
	// one circle per node of the hierarchy (root + clusters + classes)
	want := 1 + cs.NumClusters() + s.NumClasses()
	if got := strings.Count(out, "<circle"); got < want {
		t.Fatalf("circles = %d, want >= %d", got, want)
	}
}

func TestBundleViewFocusColors(t *testing.T) {
	cs, s := artifacts(t)
	out := BundleView(cs, s, synth.ScholarlyNS+"Event", 900)
	validSVG(t, out)
	// Figure 7 highlighting: green range edges, red domain edges, bold focus
	if !strings.Contains(out, "#2ca02c") {
		t.Fatal("no green (range) highlight")
	}
	if !strings.Contains(out, "#d62728") {
		t.Fatal("no red (domain) highlight")
	}
	if !strings.Contains(out, `font-weight="bold"`) {
		t.Fatal("focus class not bold")
	}
	if !strings.Contains(out, ">Event</text>") {
		t.Fatal("Event label missing")
	}
}

func TestBundleViewNoFocus(t *testing.T) {
	cs, s := artifacts(t)
	out := BundleView(cs, s, "", 900)
	validSVG(t, out)
	if strings.Contains(out, `font-weight="bold"`) {
		t.Fatal("no class should be bold without focus")
	}
}

func TestClusterGraphView(t *testing.T) {
	cs, _ := artifacts(t)
	out := ClusterGraphView(cs, 900)
	validSVG(t, out)
	if got := strings.Count(out, "<circle"); got != cs.NumClusters() {
		t.Fatalf("cluster nodes = %d, want %d", got, cs.NumClusters())
	}
}

func TestSummaryGraphViewFull(t *testing.T) {
	_, s := artifacts(t)
	out := SummaryGraphView(s, nil, 900)
	validSVG(t, out)
	if !strings.Contains(out, "100.0% of instances") {
		t.Fatal("full view must report 100% coverage")
	}
	if got := strings.Count(out, "<circle"); got != s.NumClasses() {
		t.Fatalf("class nodes = %d, want %d", got, s.NumClasses())
	}
}

func TestSummaryGraphViewPartialCoverage(t *testing.T) {
	_, s := artifacts(t)
	e, err := schema.NewExploration(s, synth.ScholarlyNS+"Event")
	if err != nil {
		t.Fatal(err)
	}
	e.Expand(synth.ScholarlyNS + "Event")
	out := SummaryGraphView(s, e.VisibleSet(), 900)
	validSVG(t, out)
	if strings.Contains(out, "100.0% of instances") {
		t.Fatal("partial view must not report 100%")
	}
	if !strings.Contains(out, "classes shown") {
		t.Fatal("header missing")
	}
}

func TestViewsEscapeXML(t *testing.T) {
	// labels with XML special characters must be escaped
	cs := &cluster.Schema{
		Dataset: "x",
		Clusters: []cluster.Cluster{
			{Label: `A<&>"B`, Classes: []string{"http://x/a"}, Instances: 5},
		},
	}
	s := &schema.Summary{
		Dataset:        "x",
		Nodes:          []schema.Node{{IRI: "http://x/a", Label: `A<&>"B`, Instances: 5}},
		TotalInstances: 5,
	}
	out := TreemapView(cs, s, 400, 300)
	if strings.Contains(out, `>A<&>`) {
		t.Fatal("unescaped XML in output")
	}
	if !strings.Contains(out, "&lt;") {
		t.Fatal("expected escaped label")
	}
}
