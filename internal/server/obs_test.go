package server

import (
	"bufio"
	"encoding/json"
	"io"
	"log/slog"
	"net/http/httptest"
	"net/url"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/sparql"
	"repro/internal/synth"
)

// obsServer is testServer plus access to the tool, with the scheduler
// started so its families are registered on the process registry.
func obsServer(t testing.TB) (*httptest.Server, *core.HBOLD) {
	t.Helper()
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(dsURL); err != nil {
		t.Fatal(err)
	}
	tool.Scheduler()
	t.Cleanup(tool.Close)
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)
	return srv, tool
}

const obsQuery = `PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?s ?t WHERE { ?s rdf:type ?t }`

func newTextLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, nil))
}

func queryURL(base, params string) string {
	return base + "/api/query?dataset=" + url.QueryEscape(dsURL) +
		"&sparql=" + url.QueryEscape(obsQuery) + params
}

// TestExplainMatchesExecution is the end-to-end acceptance check: the
// stage row counts reported by ?explain=1 must equal the number of rows
// the same query streams without it.
func TestExplainMatchesExecution(t *testing.T) {
	srv, _ := obsServer(t)

	code, body, _ := get(t, queryURL(srv.URL, ""))
	if code != 200 {
		t.Fatalf("query status = %d: %s", code, body)
	}
	rows := 0
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.Contains(line, `"vars"`) {
			continue
		}
		if strings.Contains(line, `"error"`) {
			t.Fatalf("stream error: %s", line)
		}
		rows++
	}

	code, body, hdr := get(t, queryURL(srv.URL, "&explain=1"))
	if code != 200 {
		t.Fatalf("explain status = %d: %s", code, body)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("explain content type = %s", hdr.Get("Content-Type"))
	}
	var exp sparql.Explain
	if err := json.Unmarshal([]byte(body), &exp); err != nil {
		t.Fatalf("explain not JSON: %v\n%s", err, body)
	}
	if exp.Rows != rows {
		t.Fatalf("explain rows = %d, streamed rows = %d", exp.Rows, rows)
	}
	if len(exp.Stages) == 0 {
		t.Fatal("explain has no stages")
	}
	if last := exp.Stages[len(exp.Stages)-1]; last.RowsOut != int64(rows) {
		t.Fatalf("last stage %q rowsOut = %d, streamed rows = %d", last.Name, last.RowsOut, rows)
	}
	if exp.Plan == nil {
		t.Fatal("explain has no plan tree")
	}
}

// TestExplainRejectsFederation: a federated query spans engines and
// cannot be profiled; the API must say so instead of streaming rows.
func TestExplainRejectsFederation(t *testing.T) {
	srv, _ := obsServer(t)
	code, body, _ := get(t, srv.URL+"/api/query?sources=all&explain=1&sparql="+url.QueryEscape(obsQuery))
	if code != 400 || !strings.Contains(body, "explain") {
		t.Fatalf("status = %d body = %s, want 400 mentioning explain", code, body)
	}
}

var (
	promComment = regexp.MustCompile(`^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
	promSample  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="(\\.|[^"\\])*"(,[a-zA-Z0-9_]+="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[-+]?[0-9]*\.?[0-9]+([eE][-+]?[0-9]+)?)$`)
)

// TestPromMetricsSurface scrapes GET /metrics after real traffic and
// checks both that every line parses as Prometheus text exposition and
// that each instrumented subsystem shows up.
func TestPromMetricsSurface(t *testing.T) {
	srv, _ := obsServer(t)

	// drive every subsystem once: a local query (engine series, cache
	// was already hit by Process), a federated query (federation series)
	if code, body, _ := get(t, queryURL(srv.URL, "")); code != 200 {
		t.Fatalf("query status = %d: %s", code, body)
	}
	if code, body, _ := get(t, srv.URL+"/api/query?sources=all&sparql="+url.QueryEscape(obsQuery)); code != 200 {
		t.Fatalf("federated query status = %d: %s", code, body)
	}

	code, body, hdr := get(t, srv.URL+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/plain") || !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("content type = %s", ct)
	}
	lines := 0
	for _, line := range strings.Split(body, "\n") {
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "#") {
			if !promComment.MatchString(line) {
				t.Errorf("unparseable comment line: %q", line)
			}
			continue
		}
		if !promSample.MatchString(line) {
			t.Errorf("unparseable sample line: %q", line)
		}
	}
	if lines == 0 {
		t.Fatal("empty exposition")
	}
	for _, want := range []string{
		"hbold_sched_submitted_total",  // scheduler
		"hbold_sched_workers",          // scheduler gauge
		"hbold_cache_hits_total",       // snapshot cache
		"hbold_federation_rows_total",  // federation fan-out
		"hbold_query_total",            // query engine
		"hbold_query_duration_seconds", // engine histogram
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metric family %s missing from /metrics", want)
		}
	}
	if !strings.Contains(body, `kind="select"`) {
		t.Error("engine series not labeled by query kind")
	}
}

// TestFederationStatsAPI: the registry-backed per-source series survive
// the federation client that produced them and carry the capture time.
func TestFederationStatsAPI(t *testing.T) {
	srv, tool := obsServer(t)
	if code, body, _ := get(t, srv.URL+"/api/query?sources=all&sparql="+url.QueryEscape(obsQuery)); code != 200 {
		t.Fatalf("federated query status = %d: %s", code, body)
	}
	code, body, _ := get(t, srv.URL+"/api/federation/stats")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var out struct {
		CapturedAt time.Time                     `json:"capturedAt"`
		Sources    map[string]map[string]float64 `json:"sources"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, body)
	}
	if !out.CapturedAt.Equal(tool.Clock.Now()) {
		t.Fatalf("capturedAt = %v, clock = %v", out.CapturedAt, tool.Clock.Now())
	}
	src, ok := out.Sources[dsURL]
	if !ok {
		t.Fatalf("no series for %s: %v", dsURL, out.Sources)
	}
	if src["queries"] < 1 {
		t.Fatalf("queries = %v, want >= 1", src["queries"])
	}
	if src["rows"] < 1 {
		t.Fatalf("rows = %v, want >= 1", src["rows"])
	}
}

// TestSlowQueryLog: a threshold of 0ns-adjacent catches every query, so
// one /api/query must produce exactly one structured record with the
// query hash and row count.
func TestSlowQueryLog(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(dsURL); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	s := New(tool)
	s.Log = newTextLogger(&buf)
	s.SlowQuery = time.Nanosecond
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	if code, body, _ := get(t, queryURL(srv.URL, "")); code != 200 {
		t.Fatalf("query status = %d: %s", code, body)
	}
	logged := buf.String()
	if !strings.Contains(logged, "slow query") {
		t.Fatalf("no slow-query record: %q", logged)
	}
	if !strings.Contains(logged, "query="+endpoint.QueryHash(obsQuery)) {
		t.Fatalf("record lacks query hash: %q", logged)
	}
	if !strings.Contains(logged, "rows=") {
		t.Fatalf("record lacks row count: %q", logged)
	}
}
