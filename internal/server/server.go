// Package server is H-BOLD's HTTP presentation layer: the dataset list,
// the exploration API (class focus, iterative expansion with coverage
// feedback), the visualization endpoints rendering the §3.5 layouts as
// SVG, the query API (visual query-builder models and raw SPARQL,
// streamed as NDJSON rows over the request context), and the §3.4
// manual insertion form. It is a thin adapter over internal/core.
//
// Dataset-derived responses (summary, cluster, class detail, layout
// models, SVG views) are versioned by the dataset's extraction
// generation: each carries an ETag of the form "<url>@<generation>"
// plus Cache-Control, answers If-None-Match revalidations with 304
// without recomputing anything, and is memoized in the instance's
// snapshot cache (internal/snapcache) keyed by that same generation,
// so a completed refresh atomically invalidates every view.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"html/template"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/endpoint"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/querybuilder"
	"repro/internal/schema"
	"repro/internal/snapcache"
	"repro/internal/sparql"
	"repro/internal/sparql/results"
	"repro/internal/update"
	"repro/internal/viz"
)

// Server exposes one H-BOLD instance over HTTP.
type Server struct {
	Tool *core.HBOLD
	// Log, when set together with SlowQuery, receives one record per
	// /api/query request whose total duration (stream drain included)
	// reached SlowQuery: query hash, duration, rows streamed.
	Log *slog.Logger
	// SlowQuery is the slow-query threshold; zero disables the log.
	SlowQuery time.Duration
	// ReadOnly answers every POST /api/update with 403; the change feed
	// stays readable. The serve CLI mode defaults to read-only.
	ReadOnly bool
	mux      *http.ServeMux
}

// New builds the server and its routes.
func New(tool *core.HBOLD) *Server {
	s := &Server{Tool: tool, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/metrics", s.handlePromMetrics)
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	s.mux.HandleFunc("/api/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/federation/stats", s.handleFederationStats)
	s.mux.HandleFunc("/api/cache", s.handleCache)
	s.mux.HandleFunc("/api/refresh", s.handleRefresh)
	s.mux.HandleFunc("/api/summary", s.handleSummary)
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
	s.mux.HandleFunc("/api/explore", s.handleExplore)
	s.mux.HandleFunc("/api/class", s.handleClass)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/update", s.handleUpdate)
	s.mux.HandleFunc("/api/changes", s.handleChanges)
	s.mux.HandleFunc("/api/model/treemap", s.handleModel("treemap"))
	s.mux.HandleFunc("/api/model/sunburst", s.handleModel("sunburst"))
	s.mux.HandleFunc("/api/model/circlepack", s.handleModel("circlepack"))
	s.mux.HandleFunc("/view/treemap", s.handleView("treemap"))
	s.mux.HandleFunc("/view/sunburst", s.handleView("sunburst"))
	s.mux.HandleFunc("/view/circlepack", s.handleView("circlepack"))
	s.mux.HandleFunc("/view/bundle", s.handleView("bundle"))
	s.mux.HandleFunc("/view/cluster-graph", s.handleView("cluster-graph"))
	s.mux.HandleFunc("/view/summary-graph", s.handleView("summary-graph"))
	s.mux.HandleFunc("/submit", s.handleSubmit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>H-BOLD — High-level Visualization over Big Linked Open Data</title></head>
<body>
<h1>H-BOLD</h1>
<p>{{len .}} indexed Linked Data sources. Pick one to explore its Cluster Schema or Schema Summary.</p>
<table border="1" cellpadding="4">
<tr><th>Dataset</th><th>Classes</th><th>Clusters</th><th>Instances</th><th>Triples</th><th>Last extraction</th><th>Views</th></tr>
{{range .}}
<tr>
<td>{{.Title}}</td><td>{{.Classes}}</td><td>{{.Clusters}}</td><td>{{.Instances}}</td><td>{{.Triples}}</td><td>{{.LastExtraction}}</td>
<td>
<a href="/view/cluster-graph?dataset={{.URL}}">cluster</a>
<a href="/view/treemap?dataset={{.URL}}">treemap</a>
<a href="/view/sunburst?dataset={{.URL}}">sunburst</a>
<a href="/view/circlepack?dataset={{.URL}}">pack</a>
<a href="/view/bundle?dataset={{.URL}}">bundling</a>
<a href="/view/summary-graph?dataset={{.URL}}">summary</a>
</td>
</tr>
{{end}}
</table>
<h2>Insert a new SPARQL endpoint</h2>
<form method="POST" action="/submit">
URL: <input name="url" size="50">
E-mail: <input name="email" size="30">
Title: <input name="title" size="30">
<input type="submit" value="Submit">
</form>
<p>Since the index extraction procedure can be time-consuming, you will be
notified by e-mail about the status of the extraction. The address is
deleted once the notification is sent.</p>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTmpl.Execute(w, s.Tool.Datasets()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.Datasets())
}

// handleJobs reports every pending and running extraction job plus the
// most recent completed ones — the live view of the scheduler queue.
// Reads are side-effect free: they never start a scheduler.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.SchedulerJobs())
}

// handleMetrics reports scheduler counters, queue gauges and the
// extraction latency histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.SchedulerMetrics())
}

// handlePromMetrics renders the process metrics registry in the
// Prometheus text exposition format — every subsystem that accounts into
// core's registry (scheduler, snapshot cache, federation, endpoint HTTP
// clients, query engine) shows up on one scrape surface.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.Tool.Metrics.WritePrometheus(w)
}

// handleFederationStats reports the process-lifetime per-source
// federation series from the metrics registry, stamped with the capture
// time. Unlike federation.Client.Stats(), which lives and dies with one
// client, these accumulate across every federated query the process
// served.
func (s *Server) handleFederationStats(w http.ResponseWriter, r *http.Request) {
	fields := map[string]string{
		"hbold_federation_queries_total":         "queries",
		"hbold_federation_rows_total":            "rows",
		"hbold_federation_errors_total":          "errors",
		"hbold_federation_unavailable_total":     "unavailable",
		"hbold_federation_pruned_total":          "pruned",
		"hbold_federation_first_row_seconds":     "firstRowSeconds",
		"hbold_federation_elapsed_seconds_total": "elapsedSeconds",
	}
	sources := map[string]map[string]float64{}
	for _, fam := range s.Tool.Metrics.Snapshot() {
		field, ok := fields[fam.Name]
		if !ok {
			continue
		}
		for _, se := range fam.Series {
			src := se.Labels["source"]
			if src == "" {
				continue
			}
			m := sources[src]
			if m == nil {
				m = map[string]float64{}
				sources[src] = m
			}
			m[field] = se.Value
		}
	}
	writeJSON(w, map[string]any{
		"capturedAt": s.Tool.Clock.Now(),
		"sources":    sources,
		// per-source circuit breaker state ("closed"/"half-open"/"open"
		// plus the last transition time, from the instance clock), so an
		// operator sees which members queries are currently routed around
		"breakers": s.Tool.Breakers.Snapshot(),
	})
}

// handleRefresh enqueues every due endpoint on the scheduler without
// waiting; clients watch /api/jobs for progress.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to trigger a refresh cycle", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]int{"submitted": s.Tool.SubmitDue()})
}

func (s *Server) dataset(r *http.Request) string {
	return r.URL.Query().Get("dataset")
}

// handleCache reports snapshot-cache effectiveness counters (hits,
// misses, singleflight collapses, evictions, resident bytes).
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.Cache.Stats())
}

// etagMatches reports whether an If-None-Match header value matches
// etag: "*" matches anything, lists are comma-separated, and weak
// validators ("W/...") compare by opaque tag as RFC 9110 prescribes
// for If-None-Match. Tags are parsed as quoted strings rather than
// split on commas, because our ETags embed the dataset URL and a URL
// (like any RFC 9110 opaque tag) may legally contain commas.
func etagMatches(header, etag string) bool {
	for header != "" {
		header = strings.TrimLeft(header, " \t,")
		if header == "" {
			return false
		}
		if header[0] == '*' {
			return true
		}
		rest := strings.TrimPrefix(header, "W/")
		if rest == "" || rest[0] != '"' {
			// malformed member: skip to the next list separator
			i := strings.IndexByte(header, ',')
			if i < 0 {
				return false
			}
			header = header[i+1:]
			continue
		}
		end := strings.IndexByte(rest[1:], '"')
		if end < 0 {
			return false
		}
		if rest[:end+2] == etag {
			return true
		}
		header = rest[end+2:]
	}
	return false
}

// preflight stamps the dataset's versioned validator headers
// (ETag "<url>@<generation>" and Cache-Control) and answers a matching
// If-None-Match revalidation with 304 Not Modified, reporting whether
// the request is already fully handled. It returns the generation it
// validated against so the handler's cache key and the served ETag
// cannot drift apart under a concurrent refresh. Datasets that never
// completed an extraction in this instance's lifetime (generation 0)
// get no validator and no 304 — the handler then 404s or serves as
// usual.
func (s *Server) preflight(w http.ResponseWriter, r *http.Request, url string) (gen uint64, done bool) {
	gen = s.Tool.Generation(url)
	if gen == 0 {
		return 0, false
	}
	etag := fmt.Sprintf("%q", fmt.Sprintf("%s@%d", url, gen))
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=0, must-revalidate")
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		w.WriteHeader(http.StatusNotModified)
		return gen, true
	}
	return gen, false
}

// snapshotJSON serves a JSON response memoized in the snapshot cache as
// encoded bytes, keyed by (url, gen, view, params); build runs only on
// a cache miss.
func (s *Server) snapshotJSON(w http.ResponseWriter, url string, gen uint64, view, params string, build func() (any, error)) {
	key := snapcache.Key{URL: url, Generation: gen, View: view, Params: params}
	v, err := s.Tool.Cache.GetOrCompute(key, func() (any, int64, error) {
		model, err := build()
		if err != nil {
			return nil, 0, err
		}
		body, err := json.Marshal(model)
		if err != nil {
			return nil, 0, err
		}
		return body, int64(len(body)), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.dropIfRefreshRaced(url, gen)
	w.Header().Set("Content-Type", "application/json")
	w.Write(v.([]byte))
	w.Write([]byte("\n"))
}

// dropIfRefreshRaced handles a refresh completing between preflight and
// the snapshot build: the body just computed (and cached) under gen may
// actually reflect newer persisted state, so the entry keyed at the old
// generation is dead weight — free it now rather than waiting for LRU
// pressure. The response itself is still served (it is never *older*
// than its validator), and the client's next revalidation misses and
// picks up the new generation's ETag.
func (s *Server) dropIfRefreshRaced(url string, gen uint64) {
	if cur := s.Tool.Generation(url); cur != gen {
		s.Tool.Cache.InvalidateBefore(url, cur)
	}
}

// snapshotSVG is snapshotJSON's counterpart for rendered SVG views.
func (s *Server) snapshotSVG(w http.ResponseWriter, url string, gen uint64, view, params string, render func() (string, error)) {
	key := snapcache.Key{URL: url, Generation: gen, View: view, Params: params}
	v, err := s.Tool.Cache.GetOrCompute(key, func() (any, int64, error) {
		out, err := render()
		if err != nil {
			return nil, 0, err
		}
		return out, int64(len(out)), nil
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	s.dropIfRefreshRaced(url, gen)
	w.Header().Set("Content-Type", "image/svg+xml")
	fmt.Fprint(w, v.(string))
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	url := s.dataset(r)
	gen, done := s.preflight(w, r, url)
	if done {
		return
	}
	s.snapshotJSON(w, url, gen, "api:summary", "", func() (any, error) {
		return s.Tool.Summary(url)
	})
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	url := s.dataset(r)
	gen, done := s.preflight(w, r, url)
	if done {
		return
	}
	s.snapshotJSON(w, url, gen, "api:cluster", "", func() (any, error) {
		return s.Tool.ClusterSchema(url)
	})
}

// exploreResponse is the JSON shape of one exploration step: the visible
// classes, the coverage feedback of Figure 2, and the visible edges.
type exploreResponse struct {
	Focus    string        `json:"focus"`
	Visible  []string      `json:"visible"`
	Nodes    int           `json:"nodes"`
	Coverage float64       `json:"coveragePercent"`
	Complete bool          `json:"complete"`
	Edges    []schema.Edge `json:"edges"`
}

// handleExplore starts at ?focus= and applies ?expand= (comma-separated
// class IRIs, expanded in order), returning the resulting partial view.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	if _, done := s.preflight(w, r, s.dataset(r)); done {
		return
	}
	focus := r.URL.Query().Get("focus")
	ex, err := s.Tool.Explore(s.dataset(r), focus)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if expand := r.URL.Query().Get("expand"); expand != "" {
		for _, c := range strings.Split(expand, ",") {
			if _, err := ex.Expand(strings.TrimSpace(c)); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
	}
	if r.URL.Query().Get("all") == "true" {
		ex.ExpandAll()
	}
	writeJSON(w, exploreResponse{
		Focus:    focus,
		Visible:  ex.Visible(),
		Nodes:    ex.NodeCount(),
		Coverage: ex.Coverage(),
		Complete: ex.Complete(),
		Edges:    ex.VisibleEdges(),
	})
}

// handleClass returns the class detail panel of Figure 2 step 2:
// attributes plus incoming and outgoing properties.
func (s *Server) handleClass(w http.ResponseWriter, r *http.Request) {
	url := s.dataset(r)
	gen, done := s.preflight(w, r, url)
	if done {
		return
	}
	class := r.URL.Query().Get("class")
	s.snapshotJSON(w, url, gen, "api:class", class, func() (any, error) {
		sum, err := s.Tool.Summary(url)
		if err != nil {
			return nil, err
		}
		cs, err := s.Tool.ClusterSchema(url)
		if err != nil {
			return nil, err
		}
		detail, ok := viz.ClassDetailOf(cs, sum, class)
		if !ok {
			return nil, fmt.Errorf("unknown class")
		}
		return detail, nil
	})
}

// handleModel serves the layout geometry as JSON instead of SVG, for
// clients that render themselves (as the deployed tool's D3 frontend
// did).
func (s *Server) handleModel(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		url := s.dataset(r)
		gen, done := s.preflight(w, r, url)
		if done {
			return
		}
		s.snapshotJSON(w, url, gen, "model:"+kind, "", func() (any, error) {
			sum, err := s.Tool.Summary(url)
			if err != nil {
				return nil, err
			}
			cs, err := s.Tool.ClusterSchema(url)
			if err != nil {
				return nil, err
			}
			switch kind {
			case "treemap":
				return viz.TreemapModelOf(cs, sum, 1000, 700), nil
			case "sunburst":
				return viz.SunburstModelOf(cs, sum, 400), nil
			case "circlepack":
				return viz.CirclePackModelOf(cs, sum, 800), nil
			}
			return nil, fmt.Errorf("unknown model %q", kind)
		})
	}
}

// handleQuery is the query API. Three request shapes share the route:
//
//   - POST application/json (a visual query model) without a dataset or
//     sources, or with ?build=only: generate the SPARQL text and return
//     it — the original query-builder contract.
//   - POST application/json with ?dataset= or ?sources=: generate the
//     SPARQL and run it, streaming rows.
//   - GET or form POST with ?sparql= and ?dataset= or ?sources=: run raw
//     SPARQL, streaming rows.
//
// The target is either one endpoint (?dataset=URL) or a federation:
// ?sources=URL,URL,... fans the query out to the named endpoints
// (?sources=all federates over every connected endpoint) and streams the
// merged rows — in the query's global order for ORDER BY queries, which
// the federation re-establishes with an ordered merge. ?policy=
// all|prune|cost selects the federation's source selection (default
// prune: endpoints whose extracted index proves they cannot contribute —
// a missing class, or a missing predicate when the index carries the
// full-corpus predicate scan — are not contacted). GROUP BY/aggregates
// and OFFSET are refused over sources= because same-query fan-out cannot
// answer them faithfully.
//
// Streamed responses are NDJSON (application/x-ndjson): a head line
// {"vars": [...]}, then one SPARQL-JSON binding object per row, flushed
// as they arrive, so a client reads row one while the endpoint is still
// producing. The request context cancels the query when the client goes
// away; ?timeout=30s adds a server-side deadline, and ?limit=N caps the
// response at N rows — the stream ends cleanly and evaluation is
// canceled through the same context path as a client hang-up. A
// mid-stream failure appends a final {"error": ...} line — the status
// code is long gone by then, which is the streaming trade-off.
//
// ?partial=ok (federated NDJSON only) degrades instead of aborting: a
// member dying mid-stream is dropped from the merge, the healthy
// branches keep streaming, the head line carries "partial":"ok" and a
// final {"incomplete": [...]} trailer names every dropped source (empty
// when all delivered). Refused for ORDER BY and DISTINCT/REDUCED, whose
// already-emitted rows a silent drop would invalidate; the four W3C
// formats ignore it and keep their hard-abort contract.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// the registry rides the context so the engine's per-query series
	// (count, duration, rows by kind) record for local evaluations
	ctx := obs.WithRegistry(r.Context(), s.Tool.Metrics)
	start := time.Now()
	rows := 0
	var text string
	if s.Log != nil && s.SlowQuery > 0 {
		defer func() {
			if d := time.Since(start); d >= s.SlowQuery {
				s.Log.Warn("slow query",
					"query", endpoint.QueryHash(text),
					"dur", d,
					"rows", rows)
			}
		}()
	}
	switch r.Method {
	case http.MethodPost:
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/json") {
			var q querybuilder.Query
			if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			built, err := q.Build()
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if (s.dataset(r) == "" && r.URL.Query().Get("sources") == "") || r.URL.Query().Get("build") == "only" {
				writeJSON(w, map[string]string{"sparql": built})
				return
			}
			text = built
		} else {
			if err := r.ParseForm(); err != nil {
				http.Error(w, "bad form", http.StatusBadRequest)
				return
			}
			// r.Form merges body and query string, so both documented
			// placements of sparql= work
			text = r.Form.Get("sparql")
		}
	case http.MethodGet:
		text = r.URL.Query().Get("sparql")
	default:
		http.Error(w, "GET or POST a query", http.StatusMethodNotAllowed)
		return
	}
	if text == "" {
		http.Error(w, "missing sparql query", http.StatusBadRequest)
		return
	}
	// Syntax errors in the user's query are the user's problem (400),
	// not the endpoint's (502) — and CONSTRUCT has no row stream to
	// serve on this route, so reject it up front rather than answering
	// with a convincingly empty SELECT.
	parsed, err := sparql.Parse(text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if parsed.Form == sparql.FormConstruct {
		http.Error(w, "CONSTRUCT is not supported on the streaming query API; use SELECT or ASK", http.StatusBadRequest)
		return
	}
	// Result format: NDJSON by default (the streaming-native framing), or
	// any of the W3C serializations via ?format= / Accept. formatNDJSON is
	// a sentinel outside the results enum: Negotiate returns it untouched
	// when neither the parameter nor the Accept header names a format.
	const formatNDJSON = results.Format(-1)
	formatParam := r.URL.Query().Get("format")
	if formatParam == "" && r.Form != nil {
		formatParam = r.Form.Get("format")
	}
	format, err := results.Negotiate(formatParam, r.Header.Get("Accept"), formatNDJSON)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Partial-result mode: ?partial=ok keeps a federated stream alive
	// when a member dies mid-stream — the dead branch is dropped, the
	// healthy ones keep merging, and the NDJSON trailer names the
	// incomplete sources. Only the NDJSON framing can report the
	// degradation honestly, so over the four W3C formats the parameter is
	// ignored and a mid-stream failure still hard-aborts; and only a
	// federation has branches to drop, so partial=ok without sources= is
	// a request error.
	partialParam := r.URL.Query().Get("partial")
	if partialParam == "" && r.Form != nil {
		partialParam = r.Form.Get("partial")
	}
	switch partialParam {
	case "", "ok":
	default:
		http.Error(w, "bad partial parameter: the only mode is partial=ok", http.StatusBadRequest)
		return
	}
	if partialParam == "ok" && r.URL.Query().Get("sources") == "" {
		http.Error(w, "partial=ok requires sources=; a single dataset has no branches to drop", http.StatusBadRequest)
		return
	}
	partialOK := partialParam == "ok" && format == formatNDJSON
	if partialOK {
		// shapes whose emitted rows a late branch drop would silently
		// invalidate are refused up front (mirroring the federation
		// layer's refusal, but as a 400 rather than a failed open)
		if len(parsed.OrderBy) > 0 {
			http.Error(w, "partial=ok is not supported with ORDER BY (a dropped branch breaks the global-order guarantee); retry without one of them", http.StatusBadRequest)
			return
		}
		if parsed.Distinct || parsed.Reduced {
			http.Error(w, "partial=ok is not supported with DISTINCT/REDUCED (dedup outcomes may depend on a branch that later vanishes); retry without one of them", http.StatusBadRequest)
			return
		}
	}
	var c endpoint.Client
	var fed *federation.Client
	if sel := r.URL.Query().Get("sources"); sel != "" {
		// fanned-out aggregates would interleave per-source partials;
		// the federation layer refuses them, so answer 400 here instead
		// of a 502 from the open
		if parsed.NeedsGrouping() {
			http.Error(w, "GROUP BY/aggregate queries are not supported over sources=; query a single dataset", http.StatusBadRequest)
			return
		}
		// likewise OFFSET: each member would skip rows independently,
		// dropping answers from the merged stream
		if parsed.Offset > 0 {
			http.Error(w, "OFFSET is not supported over sources=; query a single dataset", http.StatusBadRequest)
			return
		}
		// and ORDER BY on a variable the SELECT list drops: the ordered
		// merge compares projected rows, so the sort key must be projected
		if len(parsed.OrderBy) > 0 && !parsed.Star {
			proj := map[string]bool{}
			for _, it := range parsed.Select {
				proj[it.Var] = true
			}
			for _, v := range sparql.OrderByVars(parsed.OrderBy) {
				if !proj[v] {
					http.Error(w, fmt.Sprintf("ORDER BY ?%s over sources= requires ?%s in the SELECT list; project it or query a single dataset", v, v), http.StatusBadRequest)
					return
				}
			}
		}
		policy, err := federation.ParsePolicy(r.URL.Query().Get("policy"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if r.URL.Query().Get("policy") == "" {
			policy = federation.IndexPrune
		}
		var urls []string
		if sel != "all" && sel != "*" {
			for _, u := range strings.Split(sel, ",") {
				if u = strings.TrimSpace(u); u != "" {
					urls = append(urls, u)
				}
			}
		}
		f, err := s.Tool.Federation(urls, policy)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fed, c = f, f
	} else {
		url := s.dataset(r)
		if url == "" {
			http.Error(w, "missing dataset or sources parameter", http.StatusBadRequest)
			return
		}
		single, err := s.Tool.EndpointClient(url)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		c = single
	}
	limit := -1
	if l := r.URL.Query().Get("limit"); l != "" {
		n, err := strconv.Atoi(l)
		if err != nil || n < 0 {
			http.Error(w, "bad limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout", http.StatusBadRequest)
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, d)
		defer cancel()
	}
	// Every evaluation under this handler hangs off this context: a
	// satisfied ?limit= cancels it on the way out, stopping in-flight
	// branches exactly like a client hang-up would.
	ctx, cancelQuery := context.WithCancel(ctx)
	defer cancelQuery()
	if e := r.URL.Query().Get("explain"); e == "1" || e == "true" {
		// EXPLAIN runs the query to completion with the profiler attached
		// and answers with the annotated plan instead of rows. Only
		// in-process evaluation can profile: a federated query spans
		// engines (400), and the SPARQL protocol has no EXPLAIN verb.
		if r.URL.Query().Get("sources") != "" {
			http.Error(w, "explain is not supported over sources=; query a single dataset", http.StatusBadRequest)
			return
		}
		ex, ok := c.(endpoint.Explainer)
		if !ok {
			http.Error(w, "this endpoint cannot explain queries", http.StatusBadRequest)
			return
		}
		profile, err := ex.Explain(ctx, text)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		rows = profile.Rows
		writeJSON(w, profile)
		return
	}
	var rs *sparql.RowSeq
	var partial *federation.Partial
	if partialOK {
		rs, partial, err = fed.StreamPartial(ctx, text)
	} else {
		rs, err = endpoint.Stream(ctx, c, text)
	}
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer rs.Close()
	if limit >= 0 && !rs.Ask {
		// cap the row stream: Limit closes the underlying stream when the
		// cap is reached, and the deferred cancel unwinds anything still
		// evaluating behind it
		rs = rs.Limit(limit)
	}
	if format != formatNDJSON {
		w.Header().Set("Content-Type", format.ContentType())
		if rs.Ask {
			results.WriteAsk(format, w, rs.Boolean)
			return
		}
		rw := results.NewWriter(format, w, rs.Vars)
		wflusher, _ := w.(http.Flusher)
		for row := range rs.All() {
			if rw.WriteRow(row) != nil {
				return // client went away; ctx unwinds the query
			}
			rows++
			if wflusher != nil && (rows == 1 || rows%64 == 0) {
				wflusher.Flush()
			}
		}
		if err := rs.Err(); err != nil {
			// A mid-stream failure must not end as a well-formed short
			// result. JSON/XML stay unterminated; CSV/TSV have no
			// terminator, so abort the connection.
			if format == results.CSV || format == results.TSV {
				panic(http.ErrAbortHandler)
			}
			return
		}
		rw.Close()
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	if rs.Ask {
		if partial != nil {
			enc.Encode(map[string]any{"ask": true, "boolean": rs.Boolean, "incomplete": incompleteSources(partial)})
		} else {
			enc.Encode(map[string]bool{"ask": true, "boolean": rs.Boolean})
		}
		return
	}
	if partial != nil {
		enc.Encode(map[string]any{"partial": "ok", "vars": rs.Vars})
	} else {
		enc.Encode(map[string][]string{"vars": rs.Vars})
	}
	if flusher != nil {
		flusher.Flush()
	}
	// flush the first row as soon as it exists (first-row latency), then
	// in batches — per-row flushing would cost a chunked write per row
	for row := range rs.All() {
		if enc.Encode(row) != nil {
			return // client went away; ctx unwinds the query
		}
		rows++
		if flusher != nil && (rows == 1 || rows%64 == 0) {
			flusher.Flush()
		}
	}
	if err := rs.Err(); err != nil {
		enc.Encode(map[string]string{"error": err.Error()})
		return
	}
	if partial != nil {
		// machine-readable degradation trailer: always present in partial
		// mode, empty when every selected source delivered in full
		enc.Encode(map[string][]string{"incomplete": incompleteSources(partial)})
	}
}

// handleUpdate is the mutation API: POST a SPARQL 1.1 Update request —
// raw body with Content-Type application/sparql-update, or an update=
// form field — against ?dataset=. The update applies to the dataset's
// writable local tier, every derived artifact (index, summary, cluster
// schema, caches, ETags) is maintained incrementally, and the response
// reports the net delta, the new generation and the change-feed
// sequence number. A read-only instance answers 403.
func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a SPARQL update", http.StatusMethodNotAllowed)
		return
	}
	if s.ReadOnly {
		http.Error(w, "read-only instance: updates are not accepted", http.StatusForbidden)
		return
	}
	url := s.dataset(r)
	var text string
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/sparql-update") {
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, "reading request body", http.StatusBadRequest)
			return
		}
		text = string(body)
	} else {
		if err := r.ParseForm(); err != nil {
			http.Error(w, "bad form", http.StatusBadRequest)
			return
		}
		text = r.Form.Get("update")
		if url == "" {
			url = r.Form.Get("dataset")
		}
	}
	if url == "" {
		http.Error(w, "missing dataset parameter", http.StatusBadRequest)
		return
	}
	if text == "" {
		http.Error(w, "missing update request", http.StatusBadRequest)
		return
	}
	res, err := s.Tool.ApplyUpdate(r.Context(), url, text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, res)
}

// handleChanges streams the change feed as NDJSON: one event object per
// applied update. ?since=N replays the buffered events with Seq > N
// first (the feed retains a bounded ring; a consumer further behind
// re-reads the dataset instead), ?dataset= filters to one dataset, and
// ?follow=false closes after the replay instead of streaming live —
// the polling shape. The live stream ends when the client disconnects.
func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	var since uint64
	if v := r.URL.Query().Get("since"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, "bad since parameter", http.StatusBadRequest)
			return
		}
		since = n
	}
	ds := s.dataset(r)
	backlog, ch, cancel := s.Tool.Changes().Subscribe(since)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	emit := func(ev update.Event) bool {
		if ds != "" && ev.Dataset != ds {
			return true
		}
		if enc.Encode(ev) != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	for _, ev := range backlog {
		if !emit(ev) {
			return
		}
	}
	if r.URL.Query().Get("follow") == "false" {
		return
	}
	if flusher != nil {
		flusher.Flush() // commit headers so the subscriber sees the stream open
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, ok := <-ch:
			if !ok {
				return
			}
			if !emit(ev) {
				return
			}
		}
	}
}

// incompleteSources is Partial.Incomplete with a non-nil guarantee, so
// the NDJSON trailer encodes [] rather than null when nothing dropped.
func incompleteSources(p *federation.Partial) []string {
	if inc := p.Incomplete(); inc != nil {
		return inc
	}
	return []string{}
}

// handleView serves one §3.5 visualization as rendered SVG. The render
// is memoized per (dataset, generation, kind, view parameters): the
// bundle's focus class and the summary graph's visible set are part of
// the cache key, canonicalized so equivalent requests share one entry.
func (s *Server) handleView(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		url := s.dataset(r)
		gen, done := s.preflight(w, r, url)
		if done {
			return
		}
		params := ""
		switch kind {
		case "bundle":
			params = "focus=" + r.URL.Query().Get("focus")
		case "summary-graph":
			if vis := r.URL.Query().Get("visible"); vis != "" {
				classes := strings.Split(vis, ",")
				for i, c := range classes {
					classes[i] = strings.TrimSpace(c)
				}
				sort.Strings(classes)
				params = "visible=" + strings.Join(classes, ",")
			}
		}
		s.snapshotSVG(w, url, gen, "view:"+kind, params, func() (string, error) {
			sum, err := s.Tool.Summary(url)
			if err != nil {
				return "", err
			}
			cs, err := s.Tool.ClusterSchema(url)
			if err != nil {
				return "", err
			}
			switch kind {
			case "treemap":
				return viz.TreemapView(cs, sum, 1000, 700), nil
			case "sunburst":
				return viz.SunburstView(cs, sum, 800), nil
			case "circlepack":
				return viz.CirclePackView(cs, sum, 800), nil
			case "bundle":
				return viz.BundleView(cs, sum, r.URL.Query().Get("focus"), 900), nil
			case "cluster-graph":
				return viz.ClusterGraphView(cs, 900), nil
			case "summary-graph":
				var visible map[string]bool
				if p, ok := strings.CutPrefix(params, "visible="); ok {
					visible = map[string]bool{}
					for _, c := range strings.Split(p, ",") {
						visible[c] = true
					}
				}
				return viz.SummaryGraphView(sum, visible, 900), nil
			}
			return "", fmt.Errorf("unknown view %q", kind)
		})
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the submission form", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	url := r.PostForm.Get("url")
	email := r.PostForm.Get("email")
	title := r.PostForm.Get("title")
	if title == "" {
		title = url
	}
	if err := s.Tool.SubmitEndpoint(url, title, email); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "Endpoint %s submitted. You will be notified at %s when the index extraction completes.\n", url, email)
}
