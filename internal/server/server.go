// Package server is H-BOLD's HTTP presentation layer: the dataset list,
// the exploration API (class focus, iterative expansion with coverage
// feedback), the visualization endpoints rendering the §3.5 layouts as
// SVG, the visual query builder endpoint, and the §3.4 manual insertion
// form. It is a thin adapter over internal/core.
package server

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"strings"

	"repro/internal/core"
	"repro/internal/querybuilder"
	"repro/internal/schema"
	"repro/internal/viz"
)

// Server exposes one H-BOLD instance over HTTP.
type Server struct {
	Tool *core.HBOLD
	mux  *http.ServeMux
}

// New builds the server and its routes.
func New(tool *core.HBOLD) *Server {
	s := &Server{Tool: tool, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/api/datasets", s.handleDatasets)
	s.mux.HandleFunc("/api/jobs", s.handleJobs)
	s.mux.HandleFunc("/api/metrics", s.handleMetrics)
	s.mux.HandleFunc("/api/refresh", s.handleRefresh)
	s.mux.HandleFunc("/api/summary", s.handleSummary)
	s.mux.HandleFunc("/api/cluster", s.handleCluster)
	s.mux.HandleFunc("/api/explore", s.handleExplore)
	s.mux.HandleFunc("/api/class", s.handleClass)
	s.mux.HandleFunc("/api/query", s.handleQuery)
	s.mux.HandleFunc("/api/model/treemap", s.handleModel("treemap"))
	s.mux.HandleFunc("/api/model/sunburst", s.handleModel("sunburst"))
	s.mux.HandleFunc("/api/model/circlepack", s.handleModel("circlepack"))
	s.mux.HandleFunc("/view/treemap", s.handleView("treemap"))
	s.mux.HandleFunc("/view/sunburst", s.handleView("sunburst"))
	s.mux.HandleFunc("/view/circlepack", s.handleView("circlepack"))
	s.mux.HandleFunc("/view/bundle", s.handleView("bundle"))
	s.mux.HandleFunc("/view/cluster-graph", s.handleView("cluster-graph"))
	s.mux.HandleFunc("/view/summary-graph", s.handleView("summary-graph"))
	s.mux.HandleFunc("/submit", s.handleSubmit)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var homeTmpl = template.Must(template.New("home").Parse(`<!DOCTYPE html>
<html><head><title>H-BOLD — High-level Visualization over Big Linked Open Data</title></head>
<body>
<h1>H-BOLD</h1>
<p>{{len .}} indexed Linked Data sources. Pick one to explore its Cluster Schema or Schema Summary.</p>
<table border="1" cellpadding="4">
<tr><th>Dataset</th><th>Classes</th><th>Clusters</th><th>Instances</th><th>Triples</th><th>Last extraction</th><th>Views</th></tr>
{{range .}}
<tr>
<td>{{.Title}}</td><td>{{.Classes}}</td><td>{{.Clusters}}</td><td>{{.Instances}}</td><td>{{.Triples}}</td><td>{{.LastExtraction}}</td>
<td>
<a href="/view/cluster-graph?dataset={{.URL}}">cluster</a>
<a href="/view/treemap?dataset={{.URL}}">treemap</a>
<a href="/view/sunburst?dataset={{.URL}}">sunburst</a>
<a href="/view/circlepack?dataset={{.URL}}">pack</a>
<a href="/view/bundle?dataset={{.URL}}">bundling</a>
<a href="/view/summary-graph?dataset={{.URL}}">summary</a>
</td>
</tr>
{{end}}
</table>
<h2>Insert a new SPARQL endpoint</h2>
<form method="POST" action="/submit">
URL: <input name="url" size="50">
E-mail: <input name="email" size="30">
Title: <input name="title" size="30">
<input type="submit" value="Submit">
</form>
<p>Since the index extraction procedure can be time-consuming, you will be
notified by e-mail about the status of the extraction. The address is
deleted once the notification is sent.</p>
</body></html>`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := homeTmpl.Execute(w, s.Tool.Datasets()); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.Datasets())
}

// handleJobs reports every pending and running extraction job plus the
// most recent completed ones — the live view of the scheduler queue.
// Reads are side-effect free: they never start a scheduler.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.SchedulerJobs())
}

// handleMetrics reports scheduler counters, queue gauges and the
// extraction latency histogram.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Tool.SchedulerMetrics())
}

// handleRefresh enqueues every due endpoint on the scheduler without
// waiting; clients watch /api/jobs for progress.
func (s *Server) handleRefresh(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST to trigger a refresh cycle", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, map[string]int{"submitted": s.Tool.SubmitDue()})
}

func (s *Server) dataset(r *http.Request) string {
	return r.URL.Query().Get("dataset")
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Tool.Summary(s.dataset(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, sum)
}

func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	cs, err := s.Tool.ClusterSchema(s.dataset(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	writeJSON(w, cs)
}

// exploreResponse is the JSON shape of one exploration step: the visible
// classes, the coverage feedback of Figure 2, and the visible edges.
type exploreResponse struct {
	Focus    string        `json:"focus"`
	Visible  []string      `json:"visible"`
	Nodes    int           `json:"nodes"`
	Coverage float64       `json:"coveragePercent"`
	Complete bool          `json:"complete"`
	Edges    []schema.Edge `json:"edges"`
}

// handleExplore starts at ?focus= and applies ?expand= (comma-separated
// class IRIs, expanded in order), returning the resulting partial view.
func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	focus := r.URL.Query().Get("focus")
	ex, err := s.Tool.Explore(s.dataset(r), focus)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if expand := r.URL.Query().Get("expand"); expand != "" {
		for _, c := range strings.Split(expand, ",") {
			if _, err := ex.Expand(strings.TrimSpace(c)); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
		}
	}
	if r.URL.Query().Get("all") == "true" {
		ex.ExpandAll()
	}
	writeJSON(w, exploreResponse{
		Focus:    focus,
		Visible:  ex.Visible(),
		Nodes:    ex.NodeCount(),
		Coverage: ex.Coverage(),
		Complete: ex.Complete(),
		Edges:    ex.VisibleEdges(),
	})
}

// handleClass returns the class detail panel of Figure 2 step 2:
// attributes plus incoming and outgoing properties.
func (s *Server) handleClass(w http.ResponseWriter, r *http.Request) {
	sum, err := s.Tool.Summary(s.dataset(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	cs, err := s.Tool.ClusterSchema(s.dataset(r))
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	detail, ok := viz.ClassDetailOf(cs, sum, r.URL.Query().Get("class"))
	if !ok {
		http.Error(w, "unknown class", http.StatusNotFound)
		return
	}
	writeJSON(w, detail)
}

// handleModel serves the layout geometry as JSON instead of SVG, for
// clients that render themselves (as the deployed tool's D3 frontend
// did).
func (s *Server) handleModel(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sum, err := s.Tool.Summary(s.dataset(r))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		cs, err := s.Tool.ClusterSchema(s.dataset(r))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		switch kind {
		case "treemap":
			writeJSON(w, viz.TreemapModelOf(cs, sum, 1000, 700))
		case "sunburst":
			writeJSON(w, viz.SunburstModelOf(cs, sum, 400))
		case "circlepack":
			writeJSON(w, viz.CirclePackModelOf(cs, sum, 800))
		}
	}
}

// handleQuery accepts a visual query model as JSON, generates SPARQL and
// runs it against the dataset's endpoint if connected; with ?build=only
// it returns just the generated text.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST a query model", http.StatusMethodNotAllowed)
		return
	}
	var q querybuilder.Query
	if err := json.NewDecoder(r.Body).Decode(&q); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	text, err := q.Build()
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	writeJSON(w, map[string]string{"sparql": text})
}

func (s *Server) handleView(kind string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		url := s.dataset(r)
		sum, err := s.Tool.Summary(url)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		cs, err := s.Tool.ClusterSchema(url)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		var out string
		switch kind {
		case "treemap":
			out = viz.TreemapView(cs, sum, 1000, 700)
		case "sunburst":
			out = viz.SunburstView(cs, sum, 800)
		case "circlepack":
			out = viz.CirclePackView(cs, sum, 800)
		case "bundle":
			out = viz.BundleView(cs, sum, r.URL.Query().Get("focus"), 900)
		case "cluster-graph":
			out = viz.ClusterGraphView(cs, 900)
		case "summary-graph":
			var visible map[string]bool
			if vis := r.URL.Query().Get("visible"); vis != "" {
				visible = map[string]bool{}
				for _, c := range strings.Split(vis, ",") {
					visible[strings.TrimSpace(c)] = true
				}
			}
			out = viz.SummaryGraphView(sum, visible, 900)
		default:
			http.Error(w, "unknown view", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "image/svg+xml")
		fmt.Fprint(w, out)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST the submission form", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	url := r.PostForm.Get("url")
	email := r.PostForm.Get("email")
	title := r.PostForm.Get("title")
	if title == "" {
		title = url
	}
	if err := s.Tool.SubmitEndpoint(url, title, email); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintf(w, "Endpoint %s submitted. You will be notified at %s when the index extraction completes.\n", url, email)
}
