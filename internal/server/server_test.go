package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/synth"
)

const dsURL = "http://scholarly.example.org/sparql"

func testServer(t testing.TB) *httptest.Server {
	t.Helper()
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(dsURL); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)
	return srv
}

func get(t testing.TB, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body), resp.Header
}

func TestHomePage(t *testing.T) {
	srv := testServer(t)
	code, body, hdr := get(t, srv.URL+"/")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(hdr.Get("Content-Type"), "text/html") {
		t.Fatalf("content type = %s", hdr.Get("Content-Type"))
	}
	if !strings.Contains(body, "Scholarly LD") {
		t.Fatal("dataset list missing")
	}
	if !strings.Contains(body, "Insert a new SPARQL endpoint") {
		t.Fatal("manual insertion form missing")
	}
}

func TestDatasetsAPI(t *testing.T) {
	srv := testServer(t)
	code, body, _ := get(t, srv.URL+"/api/datasets")
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var ds []core.DatasetInfo
	if err := json.Unmarshal([]byte(body), &ds); err != nil {
		t.Fatal(err)
	}
	if len(ds) != 1 || ds[0].Classes != synth.ScholarlyClassCount() {
		t.Fatalf("datasets = %+v", ds)
	}
}

func TestSummaryAndClusterAPI(t *testing.T) {
	srv := testServer(t)
	code, body, _ := get(t, srv.URL+"/api/summary?dataset="+url.QueryEscape(dsURL))
	if code != 200 || !strings.Contains(body, "Event") {
		t.Fatalf("summary: %d %.80s", code, body)
	}
	code, body, _ = get(t, srv.URL+"/api/cluster?dataset="+url.QueryEscape(dsURL))
	if code != 200 || !strings.Contains(body, "clusters") {
		t.Fatalf("cluster: %d %.80s", code, body)
	}
	code, _, _ = get(t, srv.URL+"/api/summary?dataset=http://nope")
	if code != 404 {
		t.Fatalf("missing dataset status = %d", code)
	}
}

func TestExploreAPI(t *testing.T) {
	srv := testServer(t)
	event := synth.ScholarlyNS + "Event"
	code, body, _ := get(t, srv.URL+"/api/explore?dataset="+url.QueryEscape(dsURL)+"&focus="+url.QueryEscape(event))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var step struct {
		Nodes    int     `json:"nodes"`
		Coverage float64 `json:"coveragePercent"`
		Complete bool    `json:"complete"`
	}
	if err := json.Unmarshal([]byte(body), &step); err != nil {
		t.Fatal(err)
	}
	if step.Nodes != 1 || step.Complete {
		t.Fatalf("step = %+v", step)
	}
	// expand the focus class
	code, body, _ = get(t, srv.URL+"/api/explore?dataset="+url.QueryEscape(dsURL)+
		"&focus="+url.QueryEscape(event)+"&expand="+url.QueryEscape(event))
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	var step2 struct {
		Nodes    int     `json:"nodes"`
		Coverage float64 `json:"coveragePercent"`
	}
	json.Unmarshal([]byte(body), &step2)
	if step2.Nodes <= step.Nodes || step2.Coverage <= step.Coverage {
		t.Fatalf("expansion did not grow: %+v → %+v", step, step2)
	}
	// full expansion
	code, body, _ = get(t, srv.URL+"/api/explore?dataset="+url.QueryEscape(dsURL)+
		"&focus="+url.QueryEscape(event)+"&all=true")
	var step3 struct {
		Complete bool    `json:"complete"`
		Coverage float64 `json:"coveragePercent"`
	}
	json.Unmarshal([]byte(body), &step3)
	if code != 200 || !step3.Complete || step3.Coverage < 99.9 {
		t.Fatalf("full expansion = %+v", step3)
	}
}

func TestExploreErrors(t *testing.T) {
	srv := testServer(t)
	code, _, _ := get(t, srv.URL+"/api/explore?dataset="+url.QueryEscape(dsURL)+"&focus=http://nope")
	if code != 404 {
		t.Fatalf("bad focus status = %d", code)
	}
	code, _, _ = get(t, srv.URL+"/api/explore?dataset="+url.QueryEscape(dsURL)+
		"&focus="+url.QueryEscape(synth.ScholarlyNS+"Event")+"&expand=http://invisible")
	if code != 400 {
		t.Fatalf("bad expand status = %d", code)
	}
}

func TestViewEndpoints(t *testing.T) {
	srv := testServer(t)
	views := []string{"treemap", "sunburst", "circlepack", "bundle", "cluster-graph", "summary-graph"}
	for _, v := range views {
		code, body, hdr := get(t, srv.URL+"/view/"+v+"?dataset="+url.QueryEscape(dsURL))
		if code != 200 {
			t.Fatalf("view %s status = %d", v, code)
		}
		if ct := hdr.Get("Content-Type"); ct != "image/svg+xml" {
			t.Fatalf("view %s content type = %s", v, ct)
		}
		if !strings.HasPrefix(body, "<svg") {
			t.Fatalf("view %s is not svg", v)
		}
	}
}

func TestBundleViewWithFocus(t *testing.T) {
	srv := testServer(t)
	code, body, _ := get(t, srv.URL+"/view/bundle?dataset="+url.QueryEscape(dsURL)+
		"&focus="+url.QueryEscape(synth.ScholarlyNS+"Event"))
	if code != 200 || !strings.Contains(body, `font-weight="bold"`) {
		t.Fatalf("focused bundle view: %d", code)
	}
}

func TestSummaryGraphPartialView(t *testing.T) {
	srv := testServer(t)
	visible := synth.ScholarlyNS + "Event," + synth.ScholarlyNS + "Situation"
	code, body, _ := get(t, srv.URL+"/view/summary-graph?dataset="+url.QueryEscape(dsURL)+
		"&visible="+url.QueryEscape(visible))
	if code != 200 {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "2 classes shown") {
		t.Fatal("partial view header missing")
	}
}

func TestSubmitEndpoint(t *testing.T) {
	srv := testServer(t)
	resp, err := http.PostForm(srv.URL+"/submit", url.Values{
		"url":   {"http://new.example.org/sparql"},
		"email": {"someone@example.org"},
		"title": {"New LD"},
	})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	// duplicate submission rejected
	resp, _ = http.PostForm(srv.URL+"/submit", url.Values{
		"url": {"http://new.example.org/sparql"}, "email": {"x@y.z"},
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("duplicate status = %d", resp.StatusCode)
	}
	// GET not allowed
	code, _, _ := get(t, srv.URL+"/submit")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("GET status = %d", code)
	}
}

func TestQueryBuilderEndpoint(t *testing.T) {
	srv := testServer(t)
	model := `{"Class":"` + synth.ScholarlyNS + `Event","Attributes":["` + synth.ScholarlyNS + `label"]}`
	resp, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var out map[string]string
	json.Unmarshal(body, &out)
	if !strings.Contains(out["sparql"], "SELECT") || !strings.Contains(out["sparql"], "Event") {
		t.Fatalf("sparql = %s", out["sparql"])
	}
}

func TestUnknownPath(t *testing.T) {
	srv := testServer(t)
	code, _, _ := get(t, srv.URL+"/nonexistent")
	if code != 404 {
		t.Fatalf("status = %d", code)
	}
}

// TestJobObservabilityAPI drives a refresh cycle through the HTTP
// layer and reads it back from /api/jobs and /api/metrics.
func TestJobObservabilityAPI(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	t.Cleanup(tool.Close)
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)

	// before any scheduling: empty job list, zeroed counters
	code, body, _ := get(t, srv.URL+"/api/jobs")
	if code != 200 || strings.TrimSpace(body) != "[]" {
		t.Fatalf("initial jobs = %d: %s", code, body)
	}

	// GET on the trigger endpoint is rejected
	if code, _, _ := get(t, srv.URL+"/api/refresh"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET refresh status = %d", code)
	}
	resp, err := http.Post(srv.URL+"/api/refresh", "text/plain", nil)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var submitted map[string]int
	if err := json.Unmarshal(raw, &submitted); err != nil {
		t.Fatal(err)
	}
	if submitted["submitted"] != 1 {
		t.Fatalf("submitted = %v", submitted)
	}
	// the refresh runs asynchronously; wait for it through core
	if ok, failed := tool.RunDueConcurrent(context.Background()); ok+failed != 0 {
		// the due endpoint was already enqueued by /api/refresh, so the
		// second pass finds nothing new — deduping keeps this race-free
		t.Logf("second pass picked up %d ok, %d failed", ok, failed)
	}
	if err := tool.Scheduler().Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	code, body, hdr := get(t, srv.URL+"/api/jobs")
	if code != 200 || !strings.Contains(hdr.Get("Content-Type"), "application/json") {
		t.Fatalf("jobs status = %d", code)
	}
	var jobs []sched.Job
	if err := json.Unmarshal([]byte(body), &jobs); err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || jobs[0].URL != dsURL || jobs[0].State != sched.StateSucceeded {
		t.Fatalf("jobs = %+v", jobs)
	}

	code, body, _ = get(t, srv.URL+"/api/metrics")
	if code != 200 {
		t.Fatalf("metrics status = %d", code)
	}
	var m sched.Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if m.Succeeded != 1 || m.Submitted != 1 || m.Running != 0 {
		t.Fatalf("metrics = %+v", m)
	}
	if len(m.Latency) == 0 || m.LatencyCount != 1 {
		t.Fatalf("latency histogram = %+v", m)
	}
}
