package server

import (
	"encoding/json"
	"net/url"
	"strings"
	"testing"

	"repro/internal/synth"
	"repro/internal/viz"
)

func TestClassDetailAPI(t *testing.T) {
	srv := testServer(t)
	code, body, _ := get(t, srv.URL+"/api/class?dataset="+url.QueryEscape(dsURL)+
		"&class="+url.QueryEscape(synth.ScholarlyNS+"Event"))
	if code != 200 {
		t.Fatalf("status = %d: %s", code, body)
	}
	var d viz.ClassDetail
	if err := json.Unmarshal([]byte(body), &d); err != nil {
		t.Fatal(err)
	}
	if d.Label != "Event" || d.Instances != 150 || len(d.Outgoing) == 0 || len(d.Incoming) == 0 {
		t.Fatalf("detail = %+v", d)
	}
	code, _, _ = get(t, srv.URL+"/api/class?dataset="+url.QueryEscape(dsURL)+"&class=http://nope")
	if code != 404 {
		t.Fatalf("unknown class status = %d", code)
	}
}

func TestModelAPIs(t *testing.T) {
	srv := testServer(t)
	for _, kind := range []string{"treemap", "sunburst", "circlepack"} {
		code, body, hdr := get(t, srv.URL+"/api/model/"+kind+"?dataset="+url.QueryEscape(dsURL))
		if code != 200 {
			t.Fatalf("model %s status = %d", kind, code)
		}
		if !strings.Contains(hdr.Get("Content-Type"), "application/json") {
			t.Fatalf("model %s content type = %s", kind, hdr.Get("Content-Type"))
		}
		var any map[string]any
		if err := json.Unmarshal([]byte(body), &any); err != nil {
			t.Fatalf("model %s: %v", kind, err)
		}
		if any["dataset"] != dsURL {
			t.Fatalf("model %s dataset = %v", kind, any["dataset"])
		}
	}
}
