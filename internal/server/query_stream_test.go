package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"repro/internal/sparql"
	"repro/internal/synth"
)

// TestQueryStreamNDJSON runs raw SPARQL through the streaming query API
// and checks the NDJSON contract: a head line, one binding per line,
// rows matching a direct evaluation.
func TestQueryStreamNDJSON(t *testing.T) {
	srv := testServer(t)
	q := `SELECT ?s WHERE { ?s a <` + synth.ScholarlyNS + `Event> } ORDER BY ?s LIMIT 5`
	resp, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + url.QueryEscape(q))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %s", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatal("no head line")
	}
	var head struct {
		Vars []string `json:"vars"`
	}
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("head line: %v", err)
	}
	if len(head.Vars) != 1 || head.Vars[0] != "s" {
		t.Fatalf("vars = %v", head.Vars)
	}
	rows := 0
	for sc.Scan() {
		var b sparql.Binding
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			t.Fatalf("row %d: %v (%s)", rows, err, sc.Text())
		}
		if _, ok := b["s"]; !ok {
			t.Fatalf("row %d missing ?s: %s", rows, sc.Text())
		}
		rows++
	}
	if rows != 5 {
		t.Fatalf("rows = %d, want 5", rows)
	}
}

// TestQueryStreamFromBuilderModel posts a visual query model with a
// dataset and expects execution, not just generated text.
func TestQueryStreamFromBuilderModel(t *testing.T) {
	srv := testServer(t)
	model := `{"Class":"` + synth.ScholarlyNS + `Event","Attributes":["` + synth.ScholarlyNS + `label"],"Limit":3}`
	resp, err := http.Post(srv.URL+"/api/query?dataset="+url.QueryEscape(dsURL),
		"application/json", strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %s", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	lines := 0
	for sc.Scan() {
		lines++
	}
	if lines != 4 { // head + LIMIT 3 rows
		t.Fatalf("lines = %d, want 4", lines)
	}
}

// TestQueryStreamErrors covers the failure edges of the streaming route.
func TestQueryStreamErrors(t *testing.T) {
	srv := testServer(t)
	// unknown dataset
	resp, err := http.Get(srv.URL + "/api/query?dataset=http://nowhere/&sparql=" + url.QueryEscape(`ASK { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown dataset status = %d", resp.StatusCode)
	}
	// missing query text
	resp, err = http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing sparql status = %d", resp.StatusCode)
	}
	// bad timeout value
	resp, err = http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&timeout=banana&sparql=" + url.QueryEscape(`ASK { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad timeout status = %d", resp.StatusCode)
	}
	// unparsable SPARQL is the user's error, not the endpoint's
	resp, err = http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=GARBAGE")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad sparql status = %d", resp.StatusCode)
	}
	// CONSTRUCT has no row stream on this route
	resp, err = http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + url.QueryEscape(`CONSTRUCT { ?s a <http://x/T> } WHERE { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("construct status = %d", resp.StatusCode)
	}
	// form POST with sparql in the query string (the documented shape)
	resp, err = http.Post(srv.URL+"/api/query?dataset="+url.QueryEscape(dsURL)+"&sparql="+url.QueryEscape(`ASK { ?s ?p ?o }`),
		"application/x-www-form-urlencoded", strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query-string form POST status = %d", resp.StatusCode)
	}
}

// TestQueryBuilderContractPreserved: the original build-only contract —
// POST a model without a dataset — still returns the generated SPARQL.
func TestQueryBuilderContractPreserved(t *testing.T) {
	srv := testServer(t)
	model := `{"Class":"` + synth.ScholarlyNS + `Event"}`
	resp, err := http.Post(srv.URL+"/api/query", "application/json", strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["sparql"], "SELECT") {
		t.Fatalf("sparql = %q", out["sparql"])
	}
}

// TestQueryStreamAsk: ASK over the streaming route yields a single
// boolean line.
func TestQueryStreamAsk(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&timeout=30s&sparql=" + url.QueryEscape(`ASK { ?s ?p ?o }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct{ Ask, Boolean bool }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if !out.Ask || !out.Boolean {
		t.Fatalf("ask line = %+v", out)
	}
}
