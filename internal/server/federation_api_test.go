package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/sparql"
	"repro/internal/synth"
)

// fedServer builds a tool with the scholarly corpus partitioned across
// three endpoints plus one union endpoint, all indexed, and serves it.
func fedServer(t testing.TB) (*httptest.Server, []string, int) {
	t.Helper()
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	union := synth.Scholarly(1)
	parts := synth.Partition(union, 3)
	var urls []string
	for i, p := range parts {
		u := fmt.Sprintf("http://part%d.example.org/sparql", i)
		urls = append(urls, u)
		tool.Registry.Add(registry.Entry{URL: u, Title: u, AddedAt: clock.Epoch})
		tool.Connect(u, endpoint.LocalClient{Store: p})
		if err := tool.Process(u); err != nil {
			t.Fatal(err)
		}
	}
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "union", AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: union})
	if err := tool.Process(dsURL); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)
	return srv, urls, union.Len()
}

// ndjsonRows reads a streamed response: head vars, data rows, and the
// trailing error line if any.
func ndjsonRows(t testing.TB, resp *http.Response) (vars []string, rows []sparql.Binding, streamErr string) {
	t.Helper()
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no head line")
	}
	var head struct {
		Vars []string `json:"vars"`
	}
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("head: %v (%s)", err, sc.Text())
	}
	for sc.Scan() {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(sc.Bytes(), &e) == nil && e.Error != "" {
			return head.Vars, rows, e.Error
		}
		var b sparql.Binding
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			t.Fatalf("row %d: %v (%s)", len(rows), err, sc.Text())
		}
		rows = append(rows, b)
	}
	return head.Vars, rows, ""
}

// TestQuerySourcesFederates: ?sources=all streams the same number of
// rows as the union endpoint holds.
func TestQuerySourcesFederates(t *testing.T) {
	srv, urls, unionLen := fedServer(t)
	q := url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	resp, err := http.Get(srv.URL + "/api/query?sources=" + url.QueryEscape(strings.Join(urls, ",")) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	_, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" {
		t.Fatalf("stream error: %s", streamErr)
	}
	if len(rows) != unionLen {
		t.Fatalf("federated rows = %d, union holds %d triples", len(rows), unionLen)
	}
}

// TestQuerySourcesAllKeyword: sources=all federates over every connected
// endpoint — partitions plus the union endpoint, so DISTINCT-on-merge is
// what keeps the duplicate-holding fan-out equal to the single result.
func TestQuerySourcesAllKeyword(t *testing.T) {
	srv, _, _ := fedServer(t)
	q := url.QueryEscape(`SELECT DISTINCT ?c WHERE { ?s a ?c }`)
	resp, err := http.Get(srv.URL + "/api/query?sources=all&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	_, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" {
		t.Fatalf("stream error: %s", streamErr)
	}
	if len(rows) != synth.ScholarlyClassCount() {
		t.Fatalf("DISTINCT classes over sources=all = %d, want %d", len(rows), synth.ScholarlyClassCount())
	}
	// must match the single union endpoint exactly
	resp2, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	_, single, _ := ndjsonRows(t, resp2)
	if len(single) != len(rows) {
		t.Fatalf("federated DISTINCT %d rows, single endpoint %d", len(rows), len(single))
	}
}

// TestQueryLimitCapsStream: ?limit=N ends the NDJSON stream cleanly
// after N rows, single-endpoint and federated alike.
func TestQueryLimitCapsStream(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	for _, target := range []string{
		"dataset=" + url.QueryEscape(dsURL),
		"sources=" + url.QueryEscape(strings.Join(urls, ",")),
	} {
		resp, err := http.Get(srv.URL + "/api/query?" + target + "&limit=5&sparql=" + q)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("%s: status = %d", target, resp.StatusCode)
		}
		vars, rows, streamErr := ndjsonRows(t, resp)
		if streamErr != "" {
			t.Fatalf("%s: stream error: %s", target, streamErr)
		}
		if len(vars) != 3 || len(rows) != 5 {
			t.Fatalf("%s: vars=%v rows=%d, want 3 vars / 5 rows", target, vars, len(rows))
		}
	}
}

// TestQueryLimitRejectsGarbage: malformed limit is a 400, not a hang.
func TestQueryLimitRejectsGarbage(t *testing.T) {
	srv, _, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`)
	for _, bad := range []string{"x", "-3", "1.5"} {
		code, _, _ := get(t, srv.URL+"/api/query?dataset="+url.QueryEscape(dsURL)+"&limit="+bad+"&sparql="+q)
		if code != http.StatusBadRequest {
			t.Fatalf("limit=%s: status %d, want 400", bad, code)
		}
	}
}

// TestQuerySourcesTolerantSplitting: spaces around commas and trailing
// commas in sources= must not mangle the endpoint lookup.
func TestQuerySourcesTolerantSplitting(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT DISTINCT ?c WHERE { ?s a ?c }`)
	sel := url.QueryEscape(urls[0] + ", " + urls[1] + " , " + urls[2] + ",")
	resp, err := http.Get(srv.URL + "/api/query?sources=" + sel + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	_, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" {
		t.Fatalf("stream error: %s", streamErr)
	}
	if len(rows) == 0 {
		t.Fatal("no rows over the whitespace-laced source list")
	}
}

// TestQuerySourcesUnknownEndpoint: naming an unconnected endpoint is a
// 404 before any streaming starts.
func TestQuerySourcesUnknownEndpoint(t *testing.T) {
	srv, _, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`)
	code, _, _ := get(t, srv.URL+"/api/query?sources="+url.QueryEscape("http://nope.example.org/sparql")+"&sparql="+q)
	if code != http.StatusNotFound {
		t.Fatalf("status = %d, want 404", code)
	}
}

// TestQuerySourcesRejectsAggregates: a fanned-out aggregate would
// stream per-source partial results; the route answers 400 instead.
func TestQuerySourcesRejectsAggregates(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT (COUNT(?s) AS ?n) WHERE { ?s ?p ?o }`)
	code, body, _ := get(t, srv.URL+"/api/query?sources="+url.QueryEscape(strings.Join(urls, ","))+"&sparql="+q)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", code, body)
	}
	// the same aggregate against a single dataset still works
	resp, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" || len(rows) != 1 {
		t.Fatalf("single-dataset aggregate: %d rows, err %q", len(rows), streamErr)
	}
}

// TestQuerySourcesRejectsOffset: OFFSET over a federation would drop
// rows (each member skips independently); the route answers 400.
func TestQuerySourcesRejectsOffset(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o } OFFSET 3`)
	code, body, _ := get(t, srv.URL+"/api/query?sources="+url.QueryEscape(strings.Join(urls, ","))+"&sparql="+q)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", code, body)
	}
	// the same OFFSET against a single dataset still works
	resp, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("single-dataset OFFSET status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQuerySourcesRejectsNonProjectedOrderBy: ORDER BY on a variable
// the SELECT list drops cannot be merged in order (the merge sees only
// projected rows); the route answers 400 instead of concatenating.
func TestQuerySourcesRejectsNonProjectedOrderBy(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s a ?c } ORDER BY ?c LIMIT 5`)
	code, body, _ := get(t, srv.URL+"/api/query?sources="+url.QueryEscape(strings.Join(urls, ","))+"&sparql="+q)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400 (%s)", code, body)
	}
	// the same query against a single dataset still works
	resp, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("single-dataset status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestQuerySourcesOrderByStreamsGlobalOrder: an ORDER BY query over
// sources= streams rows in the query's global order — the ordered merge
// re-establishes it across branches — and matches the union endpoint.
func TestQuerySourcesOrderByStreamsGlobalOrder(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o LIMIT 40`)
	resp, err := http.Get(srv.URL + "/api/query?sources=" + url.QueryEscape(strings.Join(urls, ",")) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	vars, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" {
		t.Fatalf("stream error: %s", streamErr)
	}
	resp2, err := http.Get(srv.URL + "/api/query?dataset=" + url.QueryEscape(dsURL) + "&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	_, single, _ := ndjsonRows(t, resp2)
	if len(rows) != 40 || len(single) != 40 {
		t.Fatalf("federated %d rows, union %d, want 40 each", len(rows), len(single))
	}
	for i := range single {
		if sparql.BindingKey(rows[i], vars) != sparql.BindingKey(single[i], vars) {
			t.Fatalf("row %d differs from the union endpoint's global top-40", i)
		}
	}
}

// TestQuerySourcesBadPolicy: unknown policy values are a 400.
func TestQuerySourcesBadPolicy(t *testing.T) {
	srv, urls, _ := fedServer(t)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s ?p ?o }`)
	code, _, _ := get(t, srv.URL+"/api/query?sources="+url.QueryEscape(urls[0])+"&policy=frobnicate&sparql="+q)
	if code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", code)
	}
}

// TestQueryBuilderModelOverSources: a visual query model posted with
// sources= executes federated instead of returning generated text.
func TestQueryBuilderModelOverSources(t *testing.T) {
	srv, urls, _ := fedServer(t)
	model := `{"Class":"` + synth.ScholarlyNS + `Event","Attributes":["` + synth.ScholarlyNS + `label"],"Limit":3}`
	resp, err := http.Post(srv.URL+"/api/query?sources="+url.QueryEscape(strings.Join(urls, ",")),
		"application/json", strings.NewReader(model))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %s", ct)
	}
	_, rows, streamErr := ndjsonRows(t, resp)
	if streamErr != "" {
		t.Fatalf("stream error: %s", streamErr)
	}
	if len(rows) == 0 || len(rows) > 3 {
		t.Fatalf("rows = %d, want 1..3", len(rows))
	}
}
