package server

// Tests for the mutation API: POST /api/update applies a SPARQL 1.1
// Update request, every derived artifact follows incrementally, cached
// ETags stop validating, and the change feed on GET /api/changes
// carries one event per applied update.

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/update"
)

// postForm POSTs an x-www-form-urlencoded body and returns status+body.
func postForm(t *testing.T, u string, form url.Values) (int, string) {
	t.Helper()
	resp, err := http.PostForm(u, form)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	return resp.StatusCode, sb.String()
}

const insertPaper = `PREFIX ex: <http://scholarly.example.org/>
INSERT DATA { <http://scholarly.example.org/paper/test-live> a ex:Paper }`

func TestUpdateAPI(t *testing.T) {
	tool, srv := cacheTestTool(t)
	gen0 := tool.Generation(dsURL)

	// a summary ETag from before the write
	resp := getWithETag(t, srv.URL+"/api/summary?dataset="+url.QueryEscape(dsURL), "")
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on /api/summary")
	}

	code, body := postForm(t, srv.URL+"/api/update", url.Values{
		"dataset": {dsURL},
		"update":  {insertPaper},
	})
	if code != 200 {
		t.Fatalf("update status = %d, body %q", code, body)
	}
	var res core.UpdateResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Added != 1 || res.Removed != 0 {
		t.Fatalf("delta = +%d/-%d, want +1/-0", res.Added, res.Removed)
	}
	if res.Generation != gen0+1 {
		t.Fatalf("generation = %d, want %d", res.Generation, gen0+1)
	}
	if res.Seq == 0 {
		t.Fatal("no change-feed sequence number")
	}

	// the write invalidated the dataset's validators: the old ETag no
	// longer revalidates and the fresh response carries a new one
	resp = getWithETag(t, srv.URL+"/api/summary?dataset="+url.QueryEscape(dsURL), etag)
	if resp.StatusCode != 200 {
		t.Fatalf("revalidation after write = %d, want 200 (stale ETag)", resp.StatusCode)
	}
	if newTag := resp.Header.Get("ETag"); newTag == etag {
		t.Fatalf("ETag unchanged after write: %s", newTag)
	}

	// the inserted instance is queryable through the standard read path
	q := url.Values{
		"dataset": {dsURL},
		"sparql":  {`SELECT ?s WHERE { <http://scholarly.example.org/paper/test-live> a ?s }`},
	}
	code, body, _ = get(t, srv.URL+"/api/query?"+q.Encode())
	if code != 200 || !strings.Contains(body, "test-live") && !strings.Contains(body, "Paper") {
		t.Fatalf("query after update: status %d body %q", code, body)
	}
}

func TestUpdateAPINoop(t *testing.T) {
	tool, srv := cacheTestTool(t)
	gen0 := tool.Generation(dsURL)
	// deleting an absent triple nets to nothing: no generation bump, no event
	code, body := postForm(t, srv.URL+"/api/update", url.Values{
		"dataset": {dsURL},
		"update":  {`DELETE DATA { <http://nobody/x> a <http://nobody/C> }`},
	})
	if code != 200 {
		t.Fatalf("status = %d, body %q", code, body)
	}
	var res core.UpdateResult
	if err := json.Unmarshal([]byte(body), &res); err != nil {
		t.Fatal(err)
	}
	if res.Added != 0 || res.Removed != 0 || res.Seq != 0 {
		t.Fatalf("no-op result = %+v", res)
	}
	if g := tool.Generation(dsURL); g != gen0 {
		t.Fatalf("no-op bumped generation %d -> %d", gen0, g)
	}
}

func TestUpdateAPIReadOnly(t *testing.T) {
	tool, _ := cacheTestTool(t)
	s := New(tool)
	s.ReadOnly = true
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	code, _ := postForm(t, srv.URL+"/api/update", url.Values{
		"dataset": {dsURL},
		"update":  {insertPaper},
	})
	if code != http.StatusForbidden {
		t.Fatalf("read-only update status = %d, want 403", code)
	}
	// the change feed stays readable on a read-only instance
	code, _, _ = get(t, srv.URL+"/api/changes?follow=false")
	if code != 200 {
		t.Fatalf("read-only /api/changes status = %d", code)
	}
}

func TestUpdateAPIErrors(t *testing.T) {
	_, srv := cacheTestTool(t)
	if code, _, _ := get(t, srv.URL+"/api/update"); code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/update = %d, want 405", code)
	}
	if code, _ := postForm(t, srv.URL+"/api/update", url.Values{"update": {insertPaper}}); code != http.StatusBadRequest {
		t.Fatalf("missing dataset = %d, want 400", code)
	}
	if code, _ := postForm(t, srv.URL+"/api/update", url.Values{"dataset": {dsURL}}); code != http.StatusBadRequest {
		t.Fatalf("missing update = %d, want 400", code)
	}
	if code, _ := postForm(t, srv.URL+"/api/update", url.Values{
		"dataset": {dsURL}, "update": {"INSERT GARBAGE"},
	}); code != http.StatusBadRequest {
		t.Fatalf("bad syntax = %d, want 400", code)
	}
	if code, _ := postForm(t, srv.URL+"/api/update", url.Values{
		"dataset": {"http://nobody/sparql"}, "update": {insertPaper},
	}); code != http.StatusBadRequest {
		t.Fatalf("unknown dataset = %d, want 400", code)
	}
}

func TestChangesFeedReplay(t *testing.T) {
	_, srv := cacheTestTool(t)

	for _, upd := range []string{
		insertPaper,
		`DELETE DATA { <http://scholarly.example.org/paper/test-live> a <http://scholarly.example.org/Paper> }`,
	} {
		code, body := postForm(t, srv.URL+"/api/update", url.Values{
			"dataset": {dsURL}, "update": {upd},
		})
		if code != 200 {
			t.Fatalf("update status = %d, body %q", code, body)
		}
	}

	code, body, hdr := get(t, srv.URL+"/api/changes?follow=false")
	if code != 200 {
		t.Fatalf("changes status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type = %q", ct)
	}
	var events []update.Event
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		var ev update.Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		events = append(events, ev)
	}
	if len(events) != 2 {
		t.Fatalf("replayed %d events, want 2: %q", len(events), body)
	}
	if events[0].Seq != 1 || events[1].Seq != 2 {
		t.Fatalf("sequence numbers = %d, %d", events[0].Seq, events[1].Seq)
	}
	if events[0].Added != 1 || events[1].Removed != 1 {
		t.Fatalf("deltas = %+v", events)
	}
	if events[0].Dataset != dsURL {
		t.Fatalf("dataset = %q", events[0].Dataset)
	}

	// ?since= resumes after the given sequence number
	_, body, _ = get(t, srv.URL+"/api/changes?follow=false&since=1")
	if n := len(strings.Split(strings.TrimSpace(body), "\n")); n != 1 {
		t.Fatalf("since=1 replayed %d events, want 1", n)
	}
	// a filter on another dataset drops everything
	_, body, _ = get(t, srv.URL+"/api/changes?follow=false&dataset=http://other/sparql")
	if strings.TrimSpace(body) != "" {
		t.Fatalf("filtered replay not empty: %q", body)
	}
	// a malformed since is rejected
	if code, _, _ := get(t, srv.URL+"/api/changes?since=banana"); code != http.StatusBadRequest {
		t.Fatalf("bad since = %d, want 400", code)
	}
}
