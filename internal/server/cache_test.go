package server

// Tests for the versioned read-path cache: ETag/If-None-Match
// revalidation, generation bumps on refresh, and singleflight collapse
// of concurrent misses.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/synth"
)

// cacheTestTool is testServer's sibling that also exposes the tool, so
// tests can inspect the generation counter and cache statistics.
func cacheTestTool(t *testing.T) (*core.HBOLD, *httptest.Server) {
	t.Helper()
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	tool.Registry.Add(registry.Entry{URL: dsURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(dsURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(dsURL); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tool.Close)
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)
	return tool, srv
}

func getWithETag(t *testing.T, u, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestETagMatches(t *testing.T) {
	etag := `"http://x/sparql@3"`
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{etag, true},
		{"*", true},
		{"W/" + etag, true},
		{`"other", ` + etag, true},
		{`"http://x/sparql@2"`, false},
		{`"other"`, false},
	} {
		if got := etagMatches(tc.header, etag); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
	// dataset URLs may legally contain commas; the tag must not be
	// split apart at them
	etag = `"http://x/sparql?graphs=a,b@5"`
	for _, tc := range []struct {
		header string
		want   bool
	}{
		{etag, true},
		{`"first", ` + etag, true},
		{etag + `, "second"`, true},
		{`"http://x/sparql?graphs=a"`, false},
		{`b@5"`, false},
	} {
		if got := etagMatches(tc.header, etag); got != tc.want {
			t.Errorf("etagMatches(%q) = %v, want %v", tc.header, got, tc.want)
		}
	}
}

func TestConditionalGetReturns304(t *testing.T) {
	tool, srv := cacheTestTool(t)
	u := srv.URL + "/view/treemap?dataset=" + url.QueryEscape(dsURL)

	code, body, hdr := get(t, u)
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(body, "<svg") {
		t.Fatal("no SVG in warm response")
	}
	etag := hdr.Get("ETag")
	if want := fmt.Sprintf("%q", dsURL+"@1"); etag != want {
		t.Fatalf("ETag = %q, want %q", etag, want)
	}
	if cc := hdr.Get("Cache-Control"); !strings.Contains(cc, "must-revalidate") {
		t.Fatalf("Cache-Control = %q", cc)
	}

	// a hot-generation revalidation answers 304 from the generation
	// counter alone: no cache lookup, no layout recompute
	before := tool.Cache.Stats()
	resp := getWithETag(t, u, etag)
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp.StatusCode)
	}
	after := tool.Cache.Stats()
	if after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("304 touched the cache: before %+v, after %+v", before, after)
	}
}

func TestUnknownDatasetHasNoETag(t *testing.T) {
	_, srv := cacheTestTool(t)
	code, _, hdr := get(t, srv.URL+"/api/summary?dataset=http://nobody/sparql")
	if code != http.StatusNotFound {
		t.Fatalf("status = %d", code)
	}
	if etag := hdr.Get("ETag"); etag != "" {
		t.Fatalf("unexpected ETag %q on unindexed dataset", etag)
	}
}

// TestRefreshBumpsGeneration drives a refresh through the scheduler's
// completion path and checks that the generation advances, the old
// validator stops matching, the next read recomputes, and the previous
// generation's snapshots are eagerly invalidated.
func TestRefreshBumpsGeneration(t *testing.T) {
	tool, srv := cacheTestTool(t)
	u := srv.URL + "/api/cluster?dataset=" + url.QueryEscape(dsURL)

	_, _, hdr := get(t, u)
	etag1 := hdr.Get("ETag")
	if want := fmt.Sprintf("%q", dsURL+"@1"); etag1 != want {
		t.Fatalf("ETag = %q, want %q", etag1, want)
	}

	tk, err := tool.Scheduler().Submit(dsURL, sched.Manual)
	if err != nil {
		t.Fatal(err)
	}
	if st, err := tk.Wait(context.Background()); st != sched.StateSucceeded || err != nil {
		t.Fatalf("refresh job = %s, %v", st, err)
	}
	if gen := tool.Generation(dsURL); gen != 2 {
		t.Fatalf("generation = %d, want 2", gen)
	}
	if inv := tool.Cache.Stats().Invalidations; inv == 0 {
		t.Fatal("refresh did not invalidate generation-1 snapshots")
	}

	// the stale validator no longer matches: full response, new ETag,
	// recomputed body (a cache miss at the new generation)
	before := tool.Cache.Stats().Misses
	resp := getWithETag(t, u, etag1)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-refresh status = %d, want 200", resp.StatusCode)
	}
	if got, want := resp.Header.Get("ETag"), fmt.Sprintf("%q", dsURL+"@2"); got != want {
		t.Fatalf("post-refresh ETag = %q, want %q", got, want)
	}
	if after := tool.Cache.Stats().Misses; after <= before {
		t.Fatalf("post-refresh read did not recompute: misses %d -> %d", before, after)
	}

	// and the new validator revalidates again
	resp = getWithETag(t, u, resp.Header.Get("ETag"))
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("new-generation revalidation = %d, want 304", resp.StatusCode)
	}
}

// TestConcurrentMissesComputeOnce hammers one cold view with parallel
// readers: the singleflight collapse must run the render pipeline once
// (one view miss plus one summary and one cluster decode), however many
// requests raced.
func TestConcurrentMissesComputeOnce(t *testing.T) {
	tool, srv := cacheTestTool(t)
	u := srv.URL + "/view/sunburst?dataset=" + url.QueryEscape(dsURL)

	before := tool.Cache.Stats().Misses
	const readers = 12
	start := make(chan struct{})
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, err := http.Get(u)
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("status %d", resp.StatusCode)
			}
		}()
	}
	close(start)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// exactly three computes however many readers raced: view:sunburst,
	// core:summary, core:cluster
	if got := tool.Cache.Stats().Misses - before; got != 3 {
		t.Fatalf("misses = %d, want 3 (singleflight must collapse concurrent misses)", got)
	}
}

func TestCacheStatsEndpoint(t *testing.T) {
	_, srv := cacheTestTool(t)
	get(t, srv.URL+"/api/summary?dataset="+url.QueryEscape(dsURL))
	code, body, _ := get(t, srv.URL+"/api/cache")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, field := range []string{"hits", "misses", "collapsed", "bytes", "budget"} {
		if !strings.Contains(body, field) {
			t.Fatalf("cache stats missing %q: %s", field, body)
		}
	}
}
