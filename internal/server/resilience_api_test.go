package server

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/faultinject"
	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
)

// chaosFedServer builds a tool federating over three real HTTP protocol
// endpoints (one scholarly partition each), with member 1's handler
// wrapped in the given chaos middleware, and serves the presentation
// layer over it. It returns the API server, the member URLs, the
// partitions, and the triple count of the two healthy partitions.
func chaosFedServer(t testing.TB, mid func(http.Handler) http.Handler) (*httptest.Server, []string, []*store.Store, int) {
	t.Helper()
	tool := core.New(docstore.MustOpenMem(), clock.Real{})
	parts := synth.Partition(synth.Scholarly(1), 3)
	healthy := 0
	var urls []string
	for i, p := range parts {
		var h http.Handler = &endpoint.Handler{Store: p}
		if i == 1 && mid != nil {
			h = mid(h)
		} else {
			healthy += p.Len()
		}
		member := httptest.NewServer(h)
		t.Cleanup(member.Close)
		urls = append(urls, member.URL)
		c := endpoint.NewHTTPClient(member.URL)
		// keep chaos-induced retries fast: the suite exercises routing
		// and teardown, not wall-clock backoff
		c.Retries = 1
		c.BaseBackoff = time.Millisecond
		c.MaxBackoff = 5 * time.Millisecond
		tool.Connect(member.URL, c)
	}
	srv := httptest.NewServer(New(tool))
	t.Cleanup(srv.Close)
	return srv, urls, parts, healthy
}

// ndjsonStream is a fully parsed NDJSON response including the
// resilience framing: the head's partial marker and the trailing
// incomplete-sources line.
type ndjsonStream struct {
	partial    string
	vars       []string
	rows       []sparql.Binding
	streamErr  string
	incomplete []string // nil when no trailer line was sent
}

// readNDJSON parses a streamed /api/query response, head to trailer.
func readNDJSON(t testing.TB, resp *http.Response) ndjsonStream {
	t.Helper()
	defer resp.Body.Close()
	var out ndjsonStream
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("no head line")
	}
	var head struct {
		Partial string   `json:"partial"`
		Vars    []string `json:"vars"`
	}
	if err := json.Unmarshal(sc.Bytes(), &head); err != nil {
		t.Fatalf("head: %v (%s)", err, sc.Text())
	}
	out.partial, out.vars = head.Partial, head.Vars
	for sc.Scan() {
		var meta struct {
			Error      string    `json:"error"`
			Incomplete *[]string `json:"incomplete"`
		}
		if json.Unmarshal(sc.Bytes(), &meta) == nil {
			if meta.Error != "" {
				out.streamErr = meta.Error
				continue
			}
			if meta.Incomplete != nil {
				out.incomplete = *meta.Incomplete
				continue
			}
		}
		var b sparql.Binding
		if err := json.Unmarshal(sc.Bytes(), &b); err != nil {
			t.Fatalf("row %d: %v (%s)", len(out.rows), err, sc.Text())
		}
		out.rows = append(out.rows, b)
	}
	return out
}

// cutMember is the chaos profile of the acceptance scenario: every
// response from the member dies after 512 bytes — well into the row
// stream, well before its end.
func cutMember() func(http.Handler) http.Handler {
	return faultinject.New(faultinject.Config{Seed: 19, CutRate: 1, CutAfter: 512}).Middleware
}

const soakQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

// TestQueryPartialOKOverHTTP is the tentpole acceptance scenario at the
// API boundary: one of three members dies mid-stream; partial=ok must
// deliver every healthy-branch row plus a machine-readable trailer
// naming the dead member, while default mode surfaces the death as the
// stream error line.
func TestQueryPartialOKOverHTTP(t *testing.T) {
	srv, urls, _, healthy := chaosFedServer(t, cutMember())
	q := url.QueryEscape(soakQuery)
	sel := url.QueryEscape(strings.Join(urls, ","))

	resp, err := http.Get(srv.URL + "/api/query?sources=" + sel + "&policy=all&partial=ok&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	got := readNDJSON(t, resp)
	if got.partial != "ok" {
		t.Fatalf("head partial = %q, want %q", got.partial, "ok")
	}
	if got.streamErr != "" {
		t.Fatalf("partial mode leaked a stream error: %s", got.streamErr)
	}
	if len(got.rows) < healthy {
		t.Fatalf("rows = %d, want at least the %d healthy-branch rows", len(got.rows), healthy)
	}
	if len(got.incomplete) != 1 || got.incomplete[0] != urls[1] {
		t.Fatalf("incomplete = %v, want [%s]", got.incomplete, urls[1])
	}

	// default mode: the same death is an error, not a short answer
	resp, err = http.Get(srv.URL + "/api/query?sources=" + sel + "&policy=all&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("default mode status = %d, want 200 (the failure is mid-stream)", resp.StatusCode)
	}
	got = readNDJSON(t, resp)
	if got.streamErr == "" {
		t.Fatal("default mode swallowed a mid-stream branch death")
	}
	if got.incomplete != nil {
		t.Fatalf("default mode sent a partial trailer: %v", got.incomplete)
	}
}

// TestQueryPartialCompleteTrailerIsEmpty: with no chaos, partial mode
// still sends the trailer — an empty one, so clients can tell "complete"
// from "connection died before the trailer".
func TestQueryPartialCompleteTrailerIsEmpty(t *testing.T) {
	srv, urls, _, _ := chaosFedServer(t, nil)
	q := url.QueryEscape(soakQuery)
	sel := url.QueryEscape(strings.Join(urls, ","))
	resp, err := http.Get(srv.URL + "/api/query?sources=" + sel + "&policy=all&partial=ok&sparql=" + q)
	if err != nil {
		t.Fatal(err)
	}
	got := readNDJSON(t, resp)
	if got.streamErr != "" {
		t.Fatalf("stream error: %s", got.streamErr)
	}
	if got.incomplete == nil || len(got.incomplete) != 0 {
		t.Fatalf("incomplete = %v, want the empty trailer", got.incomplete)
	}
}

// TestQueryPartialParamValidation: partial=ok without a federation and
// partial with any other value are request errors, as are the shapes
// whose semantics a dropped branch would silently change.
func TestQueryPartialParamValidation(t *testing.T) {
	srv, urls, _, _ := chaosFedServer(t, nil)
	sel := url.QueryEscape(strings.Join(urls, ","))
	q := url.QueryEscape(soakQuery)
	for name, u := range map[string]string{
		"bad value":  srv.URL + "/api/query?sources=" + sel + "&partial=yes&sparql=" + q,
		"no sources": srv.URL + "/api/query?dataset=" + url.QueryEscape(urls[0]) + "&partial=ok&sparql=" + q,
		"order by":   srv.URL + "/api/query?sources=" + sel + "&policy=all&partial=ok&sparql=" + url.QueryEscape(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s`),
		"distinct":   srv.URL + "/api/query?sources=" + sel + "&policy=all&partial=ok&sparql=" + url.QueryEscape(`SELECT DISTINCT ?s WHERE { ?s ?p ?o }`),
	} {
		code, body, _ := get(t, u)
		if code != http.StatusBadRequest {
			t.Fatalf("%s: status = %d, want 400 (%s)", name, code, body)
		}
	}
}

// TestQueryFormatsHardAbortUnderPartial: the four W3C serializations
// have no framing for degradation, so partial=ok is ignored there and a
// mid-stream death must never end as a well-formed short document —
// asserted on the raw bytes.
func TestQueryFormatsHardAbortUnderPartial(t *testing.T) {
	srv, urls, _, _ := chaosFedServer(t, cutMember())
	sel := url.QueryEscape(strings.Join(urls, ","))
	q := url.QueryEscape(soakQuery)
	for _, format := range []string{"json", "csv", "tsv", "xml"} {
		resp, err := http.Get(srv.URL + "/api/query?sources=" + sel + "&policy=all&partial=ok&format=" + format + "&sparql=" + q)
		if err != nil {
			t.Fatal(err)
		}
		body, readErr := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch format {
		case "csv", "tsv":
			// no in-band terminator exists: the handler aborts the
			// connection so the client cannot mistake the prefix for a
			// complete result
			if readErr == nil {
				t.Fatalf("%s: read completed cleanly over an aborted result (%d bytes)", format, len(body))
			}
		case "json":
			var doc any
			if json.Unmarshal(body, &doc) == nil {
				t.Fatalf("json: truncated result parses as a complete document (%d bytes)", len(body))
			}
		case "xml":
			if strings.Contains(string(body), "</sparql>") {
				t.Fatalf("xml: truncated result carries the closing root tag (%d bytes)", len(body))
			}
		}
	}
}

// TestChaosSoak federates over three members with one flapping on a
// deterministic schedule and hammers the query API in both modes; the
// process must come back to its goroutine baseline — no branch, hedge
// or merge goroutine may outlive its query.
func TestChaosSoak(t *testing.T) {
	flap := faultinject.New(faultinject.Config{Seed: 7, FlapPeriod: 40 * time.Millisecond, FlapDownProb: 0.5})
	srv, urls, parts, _ := chaosFedServer(t, flap.Middleware)
	sel := url.QueryEscape(strings.Join(urls, ","))
	// the class-membership slice of the corpus: big enough to exercise
	// the merge, small enough to run the soak in seconds
	q := url.QueryEscape(`SELECT ?s ?c WHERE { ?s a ?c }`)
	healthy := 0
	for i, p := range parts {
		if i != 1 {
			healthy += p.Count(store.Pattern{P: rdf.NewIRI(rdf.RDFType)})
		}
	}
	client := &http.Client{}

	run := func(partial bool) {
		u := srv.URL + "/api/query?sources=" + sel + "&policy=all&sparql=" + q
		if partial {
			u += "&partial=ok"
		}
		resp, err := client.Get(u)
		if err != nil {
			t.Fatal(err)
		}
		got := readNDJSON(t, resp)
		if got.streamErr != "" {
			t.Fatalf("soak query failed: %s", got.streamErr)
		}
		// a down member is routed around, never silently truncated
		if len(got.rows) < healthy {
			t.Fatalf("rows = %d, want >= %d", len(got.rows), healthy)
		}
	}

	run(false) // warm transports before taking the baseline
	client.CloseIdleConnections()
	endpoint.CloseIdleConnections()
	time.Sleep(50 * time.Millisecond)
	baseline := runtime.NumGoroutine()

	for i := 0; i < 40; i++ {
		run(i%2 == 0)
		if i%7 == 0 {
			time.Sleep(10 * time.Millisecond) // let the flap schedule advance
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		// hedges and retries open extra keep-alive connections whose
		// idle read/write loops would otherwise count against the
		// baseline until the transport's 90 s idle timeout
		client.CloseIdleConnections()
		endpoint.CloseIdleConnections()
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+3 {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines: baseline %d, now %d\n%s", baseline, n, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// TestFederationStatsExportsBreakers: the stats API carries every
// breaker the process has registered, in its wire vocabulary.
func TestFederationStatsExportsBreakers(t *testing.T) {
	srv, urls, _, _ := chaosFedServer(t, nil)
	sel := url.QueryEscape(strings.Join(urls, ","))
	q := url.QueryEscape(`ASK { ?s ?p ?o }`)
	if code, body, _ := get(t, srv.URL+"/api/query?sources="+sel+"&policy=all&sparql="+q); code != 200 {
		t.Fatalf("warm-up query: code %d (%s)", code, body)
	}
	code, body, _ := get(t, srv.URL+"/api/federation/stats")
	if code != 200 {
		t.Fatalf("stats: code %d", code)
	}
	var doc struct {
		Breakers map[string]struct {
			State string    `json:"state"`
			Since time.Time `json:"since"`
		} `json:"breakers"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatal(err)
	}
	for _, u := range urls {
		b, ok := doc.Breakers[u]
		if !ok {
			t.Fatalf("no breaker exported for %s in %v", u, doc.Breakers)
		}
		if b.State != "closed" {
			t.Fatalf("breaker %s state = %q, want closed", u, b.State)
		}
	}
}
