package endpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/sparql"
)

// resultsMIME is the SPARQL 1.1 JSON results media type, sent as Accept
// on every request and produced by the protocol server.
const resultsMIME = "application/sparql-results+json"

// Default retry backoff bounds; see HTTPClient.BaseBackoff.
const (
	defaultBaseBackoff = 250 * time.Millisecond
	defaultMaxBackoff  = 5 * time.Second
)

// connectPatience bounds connection setup and time-to-first-byte against
// slow public endpoints. It deliberately does NOT bound the body read: a
// stream lives as long as the consumer keeps pulling rows, limited only
// by the caller's context. (http.Client.Timeout would cover the whole
// body and kill any stream outliving it, however healthy.)
const connectPatience = 30 * time.Second

// defaultHTTPClient is the shared client used when HTTPClient.HTTP is
// nil: dial and response-header bounded by connectPatience, body
// unbounded.
var defaultHTTPClient = &http.Client{
	Transport: &http.Transport{
		Proxy:                 http.ProxyFromEnvironment,
		DialContext:           (&net.Dialer{Timeout: connectPatience, KeepAlive: 30 * time.Second}).DialContext,
		ResponseHeaderTimeout: connectPatience,
		MaxIdleConnsPerHost:   8,
		IdleConnTimeout:       90 * time.Second,
	},
}

// HTTPClient queries a SPARQL endpoint over the SPARQL protocol. It is
// used against the in-process protocol servers in tests and examples, and
// would work unchanged against a live endpoint. It implements both Client
// (materialized results) and Streamer (incremental rows decoded token-wise
// off the response body, so memory stays O(row) however large the result).
type HTTPClient struct {
	// URL is the endpoint URL.
	URL string
	// HTTP is the underlying client; nil means a shared client that
	// bounds connection setup and time-to-first-byte at 30 s (the
	// extraction pipeline's patience for slow public endpoints) while
	// leaving the body read unbounded so long streams survive — bound
	// those with the context. Setting an http.Client with a Timeout
	// here caps every stream's total lifetime at that Timeout.
	HTTP *http.Client
	// Retries is the number of extra attempts on transient failure.
	Retries int
	// BaseBackoff is the pause before the first retry; each further
	// retry doubles it (with ±50% jitter so a fleet of clients does not
	// re-hit a recovering endpoint in lockstep), capped at MaxBackoff.
	// Zero values get defaults of 250ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Metrics, when set, counts request attempts, transient failures,
	// retries and backoff sleep per endpoint URL on the registry.
	Metrics *obs.Registry
	// Budget, when set, is the fleet-wide retry budget every retry spends
	// from and every success earns into. Shared across a process's
	// clients it caps total retry amplification during an outage; nil
	// means unbudgeted (every configured retry is taken).
	Budget *resilience.Budget
}

// obsCount bumps a per-endpoint counter family by v when metrics are on.
func (c *HTTPClient) obsCount(name, help string, v float64) {
	if c.Metrics == nil {
		return
	}
	c.Metrics.CounterVec(name, help, "endpoint").With(c.URL).Add(v)
}

// NewHTTPClient returns a client for the endpoint at rawURL.
func NewHTTPClient(rawURL string) *HTTPClient {
	return &HTTPClient{URL: rawURL}
}

// CloseIdleConnections drops the keep-alive connections held by the
// shared default transport (clients with a custom HTTP field manage
// their own). Daemons call it on shutdown; tests that count goroutines
// call it so idle connection loops don't read as leaks.
func CloseIdleConnections() {
	defaultHTTPClient.CloseIdleConnections()
}

func (c *HTTPClient) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// backoff sleeps before retry attempt (1-based), doubling from
// BaseBackoff up to MaxBackoff with ±50% jitter. A positive hint — the
// server's Retry-After — overrides the computed pause (capped at
// MaxBackoff, no jitter: the server named an exact recovery time, and
// spreading a fleet across it would land half the fleet early). It
// returns early with the context's error if ctx is done first.
func (c *HTTPClient) backoff(ctx context.Context, attempt int, hint time.Duration) error {
	base := c.BaseBackoff
	if base <= 0 {
		base = defaultBaseBackoff
	}
	max := c.MaxBackoff
	if max <= 0 {
		max = defaultMaxBackoff
	}
	d := base << (attempt - 1)
	if d > max || d <= 0 {
		d = max
	}
	// jitter in [d/2, 3d/2): desynchronizes the retry storms a shared
	// outage would otherwise cause
	d = d/2 + time.Duration(rand.Int63n(int64(d)))
	if hint > 0 {
		if hint > max {
			hint = max
		}
		d = hint
		c.obsCount("hbold_endpoint_retry_after_total", "Backoffs overridden by a server Retry-After header.", 1)
	}
	c.obsCount("hbold_endpoint_backoff_seconds_total", "Time spent sleeping in retry backoff.", d.Seconds())
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// post issues one SPARQL protocol request. The caller owns the response
// body on success.
func (c *HTTPClient) post(ctx context.Context, query string) (*http.Response, error) {
	form := url.Values{"query": {query}}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.URL,
		strings.NewReader(form.Encode()))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	req.Header.Set("Accept", resultsMIME)
	return c.httpClient().Do(req)
}

// permanent reports whether retrying is pointless because the caller's
// own context is done. Only the caller's context counts: an http-level
// timeout also surfaces as a deadline error, but that one is transient —
// matching on the error value would silently disable Retries for exactly
// the flaky-endpoint failures the retry loop exists for.
func permanent(ctx context.Context) bool {
	return ctx.Err() != nil
}

// retryAfterHint parses a Retry-After response header — delay-seconds
// or an HTTP-date — into a wait duration; 0 means no usable hint. The
// caller caps it at MaxBackoff, so a pathological "Retry-After: 86400"
// cannot park a query for a day.
func retryAfterHint(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}

// retrying runs one attempt under the client's retry policy: transient
// failures (as reported by the attempt itself) are retried up to
// c.Retries times with jittered exponential backoff — or the server's
// Retry-After when it sent one — stopping early when the caller's
// context dies or the shared retry budget is exhausted. Query and
// Stream share this loop so the retry policy cannot drift between the
// two paths.
func retrying[T any](ctx context.Context, c *HTTPClient, attempt func(context.Context) (T, bool, time.Duration, error)) (T, error) {
	var zero T
	var lastErr error
	var hint time.Duration
	for n := 0; ; n++ {
		if n > 0 {
			if !c.Budget.Spend() {
				c.obsCount("hbold_endpoint_retry_budget_exhausted_total", "Retries denied because the fleet-wide retry budget was empty.", 1)
				return zero, lastErr
			}
			c.obsCount("hbold_endpoint_retries_total", "Request attempts re-issued after a transient failure.", 1)
			if err := c.backoff(ctx, n, hint); err != nil {
				return zero, err
			}
		}
		c.obsCount("hbold_endpoint_attempts_total", "SPARQL protocol request attempts.", 1)
		v, retry, after, err := attempt(ctx)
		if err == nil {
			c.Budget.Earn()
			return v, nil
		}
		c.obsCount("hbold_endpoint_errors_total", "Request attempts that failed.", 1)
		lastErr, hint = err, after
		if !retry || permanent(ctx) || n >= c.Retries {
			return zero, lastErr
		}
	}
}

// Query implements Client by POSTing the query as a form and
// materializing the full result document.
func (c *HTTPClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	return retrying(ctx, c, func(ctx context.Context) (*sparql.Result, bool, time.Duration, error) {
		return c.queryOnce(ctx, query)
	})
}

// statusErr classifies a non-200 protocol response: whether it is worth
// retrying, any Retry-After hint it carried, and the error to surface.
// 429 (throttled) and 5xx are transient; other 4xx won't get better on
// retry. 503 additionally wraps ErrUnavailable, so a federation with
// SkipUnavailable routes around a flapping member instead of failing
// the whole query on it.
func (c *HTTPClient) statusErr(resp *http.Response, body string) (retry bool, hint time.Duration, err error) {
	err = fmt.Errorf("endpoint: %s returned %d: %s", c.URL, resp.StatusCode, truncate(body, 200))
	if resp.StatusCode == http.StatusServiceUnavailable {
		err = fmt.Errorf("%w: %s returned 503: %s", ErrUnavailable, c.URL, truncate(body, 200))
	}
	hint = retryAfterHint(resp)
	if resp.StatusCode >= 400 && resp.StatusCode < 500 && resp.StatusCode != http.StatusTooManyRequests {
		return false, hint, err
	}
	return true, hint, err
}

// queryOnce runs a single materialized attempt; retry reports whether
// the failure is worth another attempt. A caller context without a
// deadline gets a per-attempt ceiling of connectPatience — unlike a
// stream, a materialized query has nothing to show until the whole body
// arrived, so an unbounded read is just a hang.
func (c *HTTPClient) queryOnce(ctx context.Context, query string) (res *sparql.Result, retry bool, hint time.Duration, err error) {
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, connectPatience)
		defer cancel()
	}
	resp, err := c.post(ctx, query)
	if err != nil {
		return nil, true, 0, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return nil, true, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		retry, hint, err := c.statusErr(resp, string(body))
		return nil, retry, hint, err
	}
	var out sparql.Result
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, false, 0, fmt.Errorf("endpoint: bad results document from %s: %w", c.URL, err)
	}
	return &out, false, 0, nil
}

// Stream implements Streamer: it opens the protocol request (retrying
// transient failures like Query does, since no row has been delivered
// yet) and then decodes bindings incrementally off the response body.
// Once rows are flowing, a failure — truncated body, malformed JSON, a
// canceled context — surfaces through the stream's Err, never as a
// silent end of results.
func (c *HTTPClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	return retrying(ctx, c, func(ctx context.Context) (*sparql.RowSeq, bool, time.Duration, error) {
		return c.streamOnce(ctx, query)
	})
}

func (c *HTTPClient) streamOnce(ctx context.Context, query string) (rs *sparql.RowSeq, retry bool, hint time.Duration, err error) {
	resp, err := c.post(ctx, query)
	if err != nil {
		return nil, true, 0, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 8<<10))
		resp.Body.Close()
		retry, hint, err := c.statusErr(resp, string(body))
		return nil, retry, hint, err
	}
	rr, err := sparql.NewJSONRowReader(resp.Body)
	if err != nil {
		resp.Body.Close()
		return nil, true, 0, fmt.Errorf("endpoint: bad results document from %s: %w", c.URL, err)
	}
	if val, ok := rr.Ask(); ok {
		resp.Body.Close()
		out := sparql.ResultSeq(&sparql.Result{Ask: true, Boolean: val})
		return out, false, 0, nil
	}
	var streamErr error
	seq := func(yield func(sparql.Binding) bool) {
		defer resp.Body.Close()
		for {
			if err := ctx.Err(); err != nil {
				streamErr = err
				return
			}
			b, err := rr.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				streamErr = fmt.Errorf("endpoint: stream from %s: %w", c.URL, err)
				return
			}
			if !yield(b) {
				return
			}
		}
	}
	out := sparql.NewRowSeq(rr.Vars(), seq, &streamErr)
	// if the consumer closes without ever pulling a row, the producer
	// never ran and its deferred close never fires
	out.OnClose(func() { resp.Body.Close() })
	return out, false, 0, nil
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
