package endpoint

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/sparql"
)

// HTTPClient queries a SPARQL endpoint over the SPARQL protocol. It is
// used against the in-process protocol servers in tests and examples, and
// would work unchanged against a live endpoint.
type HTTPClient struct {
	// URL is the endpoint URL.
	URL string
	// HTTP is the underlying client; nil means a client with a 30 s
	// timeout, matching the extraction pipeline's patience for slow
	// public endpoints.
	HTTP *http.Client
	// Retries is the number of extra attempts on transient failure.
	Retries int
}

// NewHTTPClient returns a client for the endpoint at rawURL.
func NewHTTPClient(rawURL string) *HTTPClient {
	return &HTTPClient{URL: rawURL, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

// Query implements Client by POSTing the query as a form.
func (c *HTTPClient) Query(query string) (*sparql.Result, error) {
	httpc := c.HTTP
	if httpc == nil {
		httpc = &http.Client{Timeout: 30 * time.Second}
	}
	var lastErr error
	for attempt := 0; attempt <= c.Retries; attempt++ {
		form := url.Values{"query": {query}}
		resp, err := httpc.Post(c.URL, "application/x-www-form-urlencoded",
			strings.NewReader(form.Encode()))
		if err != nil {
			lastErr = err
			continue
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("endpoint: %s returned %d: %s", c.URL, resp.StatusCode, truncate(string(body), 200))
			// 4xx won't get better on retry
			if resp.StatusCode >= 400 && resp.StatusCode < 500 {
				return nil, lastErr
			}
			continue
		}
		var res sparql.Result
		if err := json.Unmarshal(body, &res); err != nil {
			return nil, fmt.Errorf("endpoint: bad results document from %s: %w", c.URL, err)
		}
		return &res, nil
	}
	return nil, lastErr
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "…"
}
