// Package endpoint implements the SPARQL protocol over HTTP — the service
// interface through which H-BOLD talks to every Linked Data source — and a
// simulation layer reproducing the operational behaviour of public
// endpoints: intermittent availability, latency, and engine-specific
// quirks (aggregate support, result-size caps) that the paper's Index
// Extraction must work around with pattern strategies.
package endpoint

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"repro/internal/sparql"
	"repro/internal/sparql/results"
	"repro/internal/store"
)

// Handler serves the SPARQL protocol (GET ?query= and POST form) over a
// store, plus the SPARQL 1.1 Update surface when an UpdateFunc is wired.
type Handler struct {
	Store store.Queryable
	// Quirks optionally constrains the engine like a real implementation
	// would; nil means a fully capable endpoint.
	Quirks *Quirks
	// Log, when set, emits one access record per request: method, query
	// hash (queries can be kilobytes; the hash correlates repeats without
	// flooding the log), rows streamed, duration and HTTP status.
	Log *slog.Logger
	// Update, when non-nil, enables the update surface: POSTs with
	// Content-Type application/sparql-update (raw request body) or an
	// update= form field are applied through it. nil answers every
	// update request with 403, like ReadOnly. The callback shape (rather
	// than a store.Backend) keeps this package free of the update
	// subsystem; wire internal/update.ApplyText through it.
	Update UpdateFunc
	// ReadOnly refuses update requests with 403 even when Update is set
	// — the -readonly serving mode.
	ReadOnly bool
}

// UpdateFunc applies one SPARQL Update request text, returning the net
// triple delta.
type UpdateFunc func(ctx context.Context, text string) (added, removed int, err error)

// QueryHash identifies a query in access logs without reproducing its
// text: the first 8 bytes of its SHA-256, hex-encoded.
func QueryHash(q string) string {
	sum := sha256.Sum256([]byte(q))
	return hex.EncodeToString(sum[:8])
}

// flushEvery is how many streamed result rows are written between
// flushes: small enough that a consumer sees rows while the query still
// runs, large enough that flushing is not per-row overhead.
const flushEvery = 64

// ServeHTTP implements the SPARQL 1.1 protocol subset: query via GET
// parameter or POST form, responding in the SPARQL JSON results format.
// The results document is written incrementally — one binding at a time
// with periodic flushes — so the first row reaches the client while the
// evaluation is still producing later ones, and a client that hangs up
// cancels the evaluation through the request context. A mid-stream
// evaluation failure leaves the JSON document unterminated, which is how
// the streaming client distinguishes a broken stream from a short result.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	var query string
	status := http.StatusOK
	rows := 0
	if h.Log != nil {
		start := time.Now()
		defer func() {
			h.Log.Info("sparql",
				"method", r.Method,
				"query", QueryHash(query),
				"rows", rows,
				"dur", time.Since(start),
				"status", status)
		}()
	}
	fail := func(msg string, code int) {
		status = code
		http.Error(w, msg, code)
	}
	var formatParam string
	switch r.Method {
	case http.MethodGet:
		query = r.URL.Query().Get("query")
		formatParam = r.URL.Query().Get("format")
	case http.MethodPost:
		// the raw-body update media type must be read before ParseForm,
		// which would consume the body looking for form data
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/sparql-update") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				fail("reading request body", http.StatusBadRequest)
				return
			}
			query = string(body)
			status = h.serveUpdate(w, r, query)
			return
		}
		if err := r.ParseForm(); err != nil {
			fail("bad form", http.StatusBadRequest)
			return
		}
		if upd := r.PostForm.Get("update"); upd != "" {
			query = upd
			status = h.serveUpdate(w, r, upd)
			return
		}
		query = r.PostForm.Get("query")
		formatParam = r.PostForm.Get("format")
	default:
		fail("method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if query == "" {
		fail("missing query parameter", http.StatusBadRequest)
		return
	}
	format, err := results.Negotiate(formatParam, r.Header.Get("Accept"), results.JSON)
	if err != nil {
		fail(err.Error(), http.StatusBadRequest)
		return
	}
	rs, err := EvaluateStream(r.Context(), h.Store, query, h.Quirks)
	if err != nil {
		fail(err.Error(), http.StatusBadRequest)
		return
	}
	defer rs.Close()
	w.Header().Set("Content-Type", format.ContentType())
	if rs.Ask {
		results.WriteAsk(format, w, rs.Boolean)
		return
	}
	rw := results.NewWriter(format, w, rs.Vars)
	flusher, _ := w.(http.Flusher)
	for row := range rs.All() {
		if rw.WriteRow(row) != nil {
			return // client went away; the context unwinds the evaluation
		}
		rows++
		if rows%flushEvery == 0 && flusher != nil {
			flusher.Flush()
		}
	}
	if rs.Err() != nil {
		// Mid-stream failure after rows were sent. JSON and XML documents
		// are left unterminated — parsers see a broken stream. CSV and TSV
		// have no terminator, so a clean connection close would look like a
		// complete short result: abort the connection instead.
		if format == results.CSV || format == results.TSV {
			panic(http.ErrAbortHandler)
		}
		return
	}
	rw.Close()
}

// serveUpdate applies one update request and answers with the net
// delta, returning the HTTP status for the access log. A handler
// without an UpdateFunc, or one serving read-only, answers 403 — the
// endpoint exists but refuses mutation.
func (h *Handler) serveUpdate(w http.ResponseWriter, r *http.Request, text string) int {
	if h.Update == nil || h.ReadOnly {
		http.Error(w, "read-only endpoint: updates are not accepted", http.StatusForbidden)
		return http.StatusForbidden
	}
	if text == "" {
		http.Error(w, "empty update request", http.StatusBadRequest)
		return http.StatusBadRequest
	}
	added, removed, err := h.Update(r.Context(), text)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"added\":%d,\"removed\":%d}\n", added, removed)
	return http.StatusOK
}

// Evaluate runs a query against st honouring the endpoint quirks,
// materializing the full result.
func Evaluate(st store.Queryable, query string, q *Quirks) (*sparql.Result, error) {
	rs, err := EvaluateStream(context.Background(), st, query, q)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

// EvaluateStream runs a query against st honouring the endpoint quirks,
// returning the rows as a stream. A MaxRows quirk becomes a stream
// truncation — real endpoints silently cap result sets, and a streaming
// engine caps them by simply stopping.
func EvaluateStream(ctx context.Context, st store.Queryable, query string, q *Quirks) (*sparql.RowSeq, error) {
	parsed, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	if q != nil {
		if err := q.Check(parsed); err != nil {
			return nil, err
		}
	}
	rs, err := parsed.Stream(ctx, st)
	if err != nil {
		return nil, err
	}
	if q != nil && q.MaxRows > 0 && !rs.Ask {
		rs = rs.Limit(q.MaxRows)
	}
	return rs, nil
}

// Quirks models implementation differences between SPARQL engines that
// the paper's pattern strategies must cope with [Benedetti et al. 2014].
type Quirks struct {
	// Name labels the simulated engine profile ("virtuoso-like", ...).
	Name string
	// NoAggregates rejects queries containing COUNT/SUM/AVG/MIN/MAX.
	NoAggregates bool
	// NoGroupBy rejects queries with GROUP BY even if aggregates work.
	NoGroupBy bool
	// MaxRows silently truncates SELECT results to this many rows (0 = no cap).
	MaxRows int
	// NoOptional rejects queries containing OPTIONAL.
	NoOptional bool
	// Broken rejects every query: the endpoint answers HTTP but is not a
	// working SPARQL service ("not compatible with the index extraction
	// phase", §3.3).
	Broken bool
}

// Check rejects queries the simulated engine cannot run.
func (q *Quirks) Check(parsed *sparql.Query) error {
	if q.Broken {
		return fmt.Errorf("endpoint %s: not a working SPARQL service", q.Name)
	}
	if q.NoGroupBy && len(parsed.GroupBy) > 0 {
		return fmt.Errorf("endpoint %s: GROUP BY not supported", q.Name)
	}
	if q.NoAggregates {
		for _, it := range parsed.Select {
			if it.Expr != nil && sparql.HasAggregate(it.Expr) {
				return fmt.Errorf("endpoint %s: aggregates not supported", q.Name)
			}
		}
		if len(parsed.Having) > 0 {
			return fmt.Errorf("endpoint %s: aggregates not supported", q.Name)
		}
	}
	if q.NoOptional && containsOptional(parsed.Where) {
		return fmt.Errorf("endpoint %s: OPTIONAL not supported", q.Name)
	}
	return nil
}

func containsOptional(g *sparql.GroupPattern) bool {
	for _, el := range g.Elems {
		switch x := el.(type) {
		case *sparql.OptionalPattern:
			return true
		case *sparql.GroupPattern:
			if containsOptional(x) {
				return true
			}
		case *sparql.UnionPattern:
			if containsOptional(x.Left) || containsOptional(x.Right) {
				return true
			}
		case *sparql.MinusPattern:
			if containsOptional(x.Inner) {
				return true
			}
		}
	}
	return false
}

// Serve starts an httptest server exposing the store as a SPARQL endpoint
// and returns it; the caller owns Close.
func Serve(st store.Queryable, quirks *Quirks) *httptest.Server {
	return httptest.NewServer(&Handler{Store: st, Quirks: quirks})
}

// ServeFlaky starts a protocol server that answers with HTTP 500 while
// *failures > 0 (decrementing it), then behaves normally. It exercises the
// client retry path.
func ServeFlaky(st store.Queryable, failures *int) *httptest.Server {
	h := &Handler{Store: st}
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if *failures > 0 {
			*failures--
			http.Error(w, "transient failure", http.StatusInternalServerError)
			return
		}
		h.ServeHTTP(w, r)
	}))
}

// Standard quirk profiles named after the behaviours observed on public
// endpoints (the engines themselves are not named in the paper; profiles
// capture the failure modes its references describe).
var (
	// ProfileFull supports everything.
	ProfileFull = &Quirks{Name: "full"}
	// ProfileNoAgg rejects aggregate queries — extraction must fall back
	// to enumerating and counting client-side.
	ProfileNoAgg = &Quirks{Name: "no-aggregates", NoAggregates: true, NoGroupBy: true}
	// ProfileNoGroupBy supports plain COUNT but rejects GROUP BY — the
	// middle tier of engine capabilities the pattern strategies probe.
	ProfileNoGroupBy = &Quirks{Name: "no-group-by", NoGroupBy: true}
	// ProfileCapped truncates results at 10000 rows — extraction must
	// paginate with LIMIT/OFFSET.
	ProfileCapped = &Quirks{Name: "capped", MaxRows: 10000}
	// ProfileLegacy rejects aggregates and OPTIONAL and caps results —
	// the worst endpoints on the open web.
	ProfileLegacy = &Quirks{Name: "legacy", NoAggregates: true, NoGroupBy: true, NoOptional: true, MaxRows: 1000}
	// ProfileBroken answers the protocol but fails every query.
	ProfileBroken = &Quirks{Name: "broken", Broken: true}
)
