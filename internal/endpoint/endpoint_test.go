package endpoint

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/rdf"
	"repro/internal/store"
	"repro/internal/turtle"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
ex:a a ex:C ; ex:p ex:b .
ex:b a ex:C .
ex:c a ex:D .
`)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

func TestHandlerGET(t *testing.T) {
	srv := Serve(testStore(t), nil)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(`SELECT ?s WHERE { ?s a <http://ex/C> }`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/sparql-results+json" {
		t.Fatalf("content type = %q", ct)
	}
}

func TestHandlerPOSTViaClient(t *testing.T) {
	srv := Serve(testStore(t), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	res, err := c.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://ex/C> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestHandlerAskViaClient(t *testing.T) {
	srv := Serve(testStore(t), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	res, err := c.Query(context.Background(), `ASK { <http://ex/a> <http://ex/p> <http://ex/b> }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Ask || !res.Boolean {
		t.Fatalf("res = %+v", res)
	}
}

func TestHandlerBadQuery(t *testing.T) {
	srv := Serve(testStore(t), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	if _, err := c.Query(context.Background(), `GARBAGE`); err == nil {
		t.Fatal("bad query should error")
	}
}

func TestHandlerMissingQuery(t *testing.T) {
	srv := Serve(testStore(t), nil)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
}

func TestQuirksNoAggregates(t *testing.T) {
	st := testStore(t)
	if _, err := Evaluate(st, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`, ProfileNoAgg); err == nil {
		t.Fatal("aggregate query should be rejected")
	}
	if _, err := Evaluate(st, `SELECT ?s WHERE { ?s ?p ?o }`, ProfileNoAgg); err != nil {
		t.Fatalf("plain query rejected: %v", err)
	}
}

func TestQuirksNoGroupBy(t *testing.T) {
	st := testStore(t)
	q := `SELECT ?c WHERE { ?s a ?c } GROUP BY ?c`
	if _, err := Evaluate(st, q, ProfileNoAgg); err == nil {
		t.Fatal("GROUP BY should be rejected")
	}
}

func TestQuirksNoOptional(t *testing.T) {
	st := testStore(t)
	q := `SELECT ?s WHERE { ?s a <http://ex/C> OPTIONAL { ?s <http://ex/p> ?o } }`
	if _, err := Evaluate(st, q, ProfileLegacy); err == nil {
		t.Fatal("OPTIONAL should be rejected by legacy profile")
	}
	if _, err := Evaluate(st, q, ProfileFull); err != nil {
		t.Fatalf("full profile rejected OPTIONAL: %v", err)
	}
}

func TestQuirksMaxRows(t *testing.T) {
	st := store.New()
	for i := 0; i < 50; i++ {
		st.AddSPO(rdf.NewIRI("http://ex/s"+string(rune('a'+i%26))+string(rune('a'+i/26))), rdf.NewIRI("http://ex/p"), rdf.NewInteger(int64(i)))
	}
	capped := &Quirks{Name: "tiny", MaxRows: 10}
	res, err := Evaluate(st, `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`, capped)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 10 {
		t.Fatalf("rows = %d, want 10 (silent truncation)", len(res.Rows))
	}
}

func TestAvailabilityDeterministic(t *testing.T) {
	a1 := NewAvailability(7, 0.3)
	a2 := NewAvailability(7, 0.3)
	for d := 0; d < 100; d++ {
		if a1.UpOn(d) != a2.UpOn(d) {
			t.Fatalf("schedules diverge at day %d", d)
		}
	}
}

func TestAvailabilityOutageLengths(t *testing.T) {
	a := NewAvailability(42, 0.2)
	// outages last at most 2 days: no 3 consecutive down days
	run := 0
	for d := 0; d < 365; d++ {
		if !a.UpOn(d) {
			run++
			if run > 2 {
				t.Fatalf("outage longer than 2 days ending at day %d", d)
			}
		} else {
			run = 0
		}
	}
}

func TestAvailabilityAlwaysUpWhenZeroProb(t *testing.T) {
	a := NewAvailability(1, 0)
	for d := 0; d < 50; d++ {
		if !a.UpOn(d) {
			t.Fatalf("day %d down with prob 0", d)
		}
	}
}

func TestAvailabilityMixedUptime(t *testing.T) {
	a := NewAvailability(9, 0.25)
	up := 0
	for d := 0; d < 1000; d++ {
		if a.UpOn(d) {
			up++
		}
	}
	frac := float64(up) / 1000
	if frac < 0.4 || frac > 0.85 {
		t.Fatalf("uptime fraction = %.2f, outside sanity band", frac)
	}
}

func TestRemoteQueryAndStats(t *testing.T) {
	r := NewRemote("test", "sim://test", testStore(t), nil, nil, nil)
	res, err := r.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://ex/C> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	q, v := r.Stats()
	if q != 1 || v <= 0 {
		t.Fatalf("stats = %d, %v", q, v)
	}
}

func TestRemoteUnavailable(t *testing.T) {
	ck := clock.NewSim(clock.Epoch)
	// find a seed/day where the endpoint is down
	avail := NewAvailability(3, 0.5)
	r := NewRemote("flaky", "sim://flaky", testStore(t), nil, avail, ck)
	sawDown, sawUp := false, false
	for d := 0; d < 60 && (!sawDown || !sawUp); d++ {
		_, err := r.Query(context.Background(), `ASK { ?s ?p ?o }`)
		if errors.Is(err, ErrUnavailable) {
			sawDown = true
		} else if err == nil {
			sawUp = true
		} else {
			t.Fatal(err)
		}
		ck.AdvanceDays(1)
	}
	if !sawDown || !sawUp {
		t.Fatalf("expected both up and down days: down=%v up=%v", sawDown, sawUp)
	}
}

func TestDayIndex(t *testing.T) {
	if DayIndex(clock.Epoch) != 0 {
		t.Fatal("epoch should be day 0")
	}
	if DayIndex(clock.Epoch.Add(49*time.Hour)) != 2 {
		t.Fatal("49h should be day 2")
	}
}

func TestCostModel(t *testing.T) {
	c := CostModel{BaseLatency: 100 * time.Millisecond, PerRow: time.Millisecond}
	if got := c.Cost(50); got != 150*time.Millisecond {
		t.Fatalf("Cost = %v", got)
	}
}

func TestLocalClient(t *testing.T) {
	c := LocalClient{Store: testStore(t)}
	res, err := c.Query(context.Background(), `SELECT ?s WHERE { ?s a <http://ex/D> }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestClientRetriesOn500(t *testing.T) {
	fails := 2
	srv := ServeFlaky(testStore(t), &fails)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	c.Retries = 3
	res, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Boolean {
		t.Fatal("ASK should be true")
	}
}

func TestTruncateHelper(t *testing.T) {
	if truncate("hello", 10) != "hello" {
		t.Fatal("short string should be unchanged")
	}
	if got := truncate(strings.Repeat("x", 300), 5); got != "xxxxx…" {
		t.Fatalf("truncate = %q", got)
	}
}
