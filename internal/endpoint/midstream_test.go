package endpoint

// Mid-stream failure contract of the protocol handler: when the
// evaluation dies after rows have been sent, the response must be
// detectably broken — an unterminated document for JSON/XML, an aborted
// connection for the terminator-less CSV/TSV — never a clean short
// result a client would mistake for the complete answer.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/store"
)

// cancelAfterWrites cancels the request context once n response writes
// have gone out: the evaluation keeps failing mid-stream while the
// client connection stays healthy — the opposite of a client hang-up.
type cancelAfterWrites struct {
	http.ResponseWriter
	cancel context.CancelFunc
	left   int
}

func (c *cancelAfterWrites) Write(p []byte) (int, error) {
	if c.left > 0 {
		c.left--
		if c.left == 0 {
			c.cancel()
		}
	}
	return c.ResponseWriter.Write(p)
}

func (c *cancelAfterWrites) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// serveDyingMidStream exposes a large store through a handler whose
// evaluation is killed after a few rows have been written.
func serveDyingMidStream(t *testing.T) *httptest.Server {
	t.Helper()
	g := rdf.NewGraph()
	for i := 0; i < 5000; i++ {
		g.AddSPO(
			rdf.NewIRI(fmt.Sprintf("http://ex/s%d", i)),
			rdf.NewIRI(fmt.Sprintf("http://ex/p%d", i%7)),
			rdf.NewInteger(int64(i)),
		)
	}
	st := store.FromGraph(g)
	h := &Handler{Store: st}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		// the handler flushes every 64 rows; cancelling on write 70 means
		// headers and a partial table have already reached the client when
		// the evaluation dies
		h.ServeHTTP(&cancelAfterWrites{ResponseWriter: w, cancel: cancel, left: 70}, r.WithContext(ctx))
	}))
	t.Cleanup(srv.Close)
	return srv
}

const midStreamQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

func TestMidStreamErrorLeavesJSONUnterminated(t *testing.T) {
	srv := serveDyingMidStream(t)
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(midStreamQuery) + "&format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v (JSON responses end cleanly; the document itself is the signal)", err)
	}
	if !strings.Contains(string(body), `"bindings"`) {
		t.Fatalf("no rows before the failure; body: %.200s", body)
	}
	if json.Valid(body) {
		t.Fatalf("mid-stream failure produced a complete JSON document — a short result masquerading as the full answer:\n%.300s", body)
	}
}

func TestMidStreamErrorLeavesXMLUnterminated(t *testing.T) {
	srv := serveDyingMidStream(t)
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(midStreamQuery) + "&format=xml")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if !strings.Contains(string(body), "<result>") {
		t.Fatalf("no rows before the failure; body: %.200s", body)
	}
	if strings.Contains(string(body), "</sparql>") {
		t.Fatalf("mid-stream failure produced a terminated XML document:\n%.300s", body)
	}
}

func TestMidStreamErrorAbortsTabular(t *testing.T) {
	for _, format := range []string{"csv", "tsv"} {
		t.Run(format, func(t *testing.T) {
			srv := serveDyingMidStream(t)
			resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(midStreamQuery) + "&format=" + format)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			// CSV/TSV have no terminator, so a clean close would make the
			// truncated table look complete; the handler must abort the
			// connection and the read must error
			if _, err := io.ReadAll(resp.Body); err == nil {
				t.Fatalf("%s body read completed cleanly after a mid-stream failure; want an aborted connection", format)
			}
		})
	}
}
