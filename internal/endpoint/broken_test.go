package endpoint

import (
	"testing"
)

func TestProfileBrokenRejectsEverything(t *testing.T) {
	st := testStore(t)
	for _, q := range []string{
		`ASK { ?s ?p ?o }`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
	} {
		if _, err := Evaluate(st, q, ProfileBroken); err == nil {
			t.Errorf("broken profile answered %q", q)
		}
	}
}

func TestProfileNoGroupByAllowsPlainCount(t *testing.T) {
	st := testStore(t)
	if _, err := Evaluate(st, `SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`, ProfileNoGroupBy); err != nil {
		t.Fatalf("plain COUNT rejected: %v", err)
	}
	if _, err := Evaluate(st, `SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c`, ProfileNoGroupBy); err == nil {
		t.Fatal("GROUP BY should be rejected")
	}
}
