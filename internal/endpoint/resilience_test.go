package endpoint

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/resilience"
)

// serveStatus answers every request with code (plus any headers),
// counting requests.
func serveStatus(code int, hdr http.Header, hits *atomic.Int64) *httptest.Server {
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		for k, vs := range hdr {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		http.Error(w, "synthetic failure", code)
	}))
}

func TestClientHonorsRetryAfterSeconds(t *testing.T) {
	var hits atomic.Int64
	srv := serveStatus(http.StatusTooManyRequests, http.Header{"Retry-After": {"1"}}, &hits)
	defer srv.Close()
	reg := obs.NewRegistry()
	c := NewHTTPClient(srv.URL)
	c.Retries = 1
	c.Metrics = reg
	// MaxBackoff below the 1s hint: the override must still be capped
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 20 * time.Millisecond
	start := time.Now()
	_, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`)
	if err == nil {
		t.Fatal("429 endpoint answered successfully")
	}
	if got := hits.Load(); got != 2 {
		t.Fatalf("requests = %d, want 2 (429 must be retryable)", got)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("slept %v: Retry-After hint must be capped at MaxBackoff", elapsed)
	}
	var overrides float64
	for _, fam := range reg.Snapshot() {
		if fam.Name == "hbold_endpoint_retry_after_total" {
			for _, se := range fam.Series {
				overrides += se.Value
			}
		}
	}
	if overrides != 1 {
		t.Fatalf("retry-after override counter = %v, want 1", overrides)
	}
}

func TestRetryAfterHintFormats(t *testing.T) {
	mk := func(v string) *http.Response {
		h := http.Header{}
		if v != "" {
			h.Set("Retry-After", v)
		}
		return &http.Response{Header: h}
	}
	if got := retryAfterHint(mk("7")); got != 7*time.Second {
		t.Fatalf("seconds form = %v, want 7s", got)
	}
	if got := retryAfterHint(mk("")); got != 0 {
		t.Fatalf("absent header = %v, want 0", got)
	}
	if got := retryAfterHint(mk("-3")); got != 0 {
		t.Fatalf("negative seconds = %v, want 0", got)
	}
	if got := retryAfterHint(mk("garbage")); got != 0 {
		t.Fatalf("unparseable = %v, want 0", got)
	}
	future := time.Now().Add(30 * time.Second).UTC().Format(http.TimeFormat)
	if got := retryAfterHint(mk(future)); got <= 0 || got > 30*time.Second {
		t.Fatalf("HTTP-date form = %v, want (0, 30s]", got)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if got := retryAfterHint(mk(past)); got != 0 {
		t.Fatalf("past HTTP-date = %v, want 0", got)
	}
}

func TestClient503WrapsErrUnavailable(t *testing.T) {
	var hits atomic.Int64
	srv := serveStatus(http.StatusServiceUnavailable, nil, &hits)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	if _, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("503 err = %v, want ErrUnavailable", err)
	}
	if _, err := c.Stream(context.Background(), `ASK { ?s ?p ?o }`); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("503 stream err = %v, want ErrUnavailable", err)
	}
}

func TestClientRetryBudgetCapsRetries(t *testing.T) {
	var hits atomic.Int64
	srv := serveStatus(http.StatusInternalServerError, nil, &hits)
	defer srv.Close()
	reg := obs.NewRegistry()
	budget := resilience.NewBudget(2, 1)
	c := NewHTTPClient(srv.URL)
	c.Retries = 10
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 2 * time.Millisecond
	c.Metrics = reg
	c.Budget = budget
	if _, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`); err == nil {
		t.Fatal("dead endpoint answered")
	}
	// 1 initial attempt + 2 budgeted retries, not 1+10
	if got := hits.Load(); got != 3 {
		t.Fatalf("requests = %d, want 3 (budget of 2 must stop the retry loop)", got)
	}
	var exhausted float64
	for _, fam := range reg.Snapshot() {
		if fam.Name == "hbold_endpoint_retry_budget_exhausted_total" {
			for _, se := range fam.Series {
				exhausted += se.Value
			}
		}
	}
	if exhausted != 1 {
		t.Fatalf("budget-exhausted counter = %v, want 1", exhausted)
	}
	// successes refill the budget for the next caller
	ok := Serve(testStore(t), nil)
	defer ok.Close()
	c2 := NewHTTPClient(ok.URL)
	c2.Budget = budget
	if _, err := c2.Query(context.Background(), `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	if got := budget.Tokens(); got != 1 {
		t.Fatalf("budget after one success = %v tokens, want 1", got)
	}
}
