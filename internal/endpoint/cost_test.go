package endpoint

// Cost-accounting regressions for the simulated remote: virtual time
// must charge the base latency once per request plus the per-row
// transfer cost for rows *actually delivered* — a pull canceled
// mid-stream, or a stream abandoned early, charges only what crossed
// the simulated wire.

import (
	"context"
	"errors"
	"testing"
	"time"
)

const costQuery = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

func costRemote() *Remote {
	r := NewRemote("r", "http://r/sparql", streamStore(), nil, nil, nil)
	r.Cost = CostModel{BaseLatency: time.Millisecond, PerRow: time.Microsecond}
	return r
}

func wantVirtual(t *testing.T, r *Remote, rows int) {
	t.Helper()
	queries, virtual := r.Stats()
	want := time.Millisecond + time.Duration(rows)*time.Microsecond
	if queries != 1 || virtual != want {
		t.Fatalf("stats = %d queries, %v virtual; want 1 query, %v (%d delivered rows)",
			queries, virtual, rows, want)
	}
}

// TestRemoteCostCanceledMidStream: cancel after k rows; only those k
// rows are charged, not the rows the evaluation would have produced.
func TestRemoteCostCanceledMidStream(t *testing.T) {
	r := costRemote()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs, err := r.Stream(ctx, costQuery)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	rows := 0
	for range rs.All() {
		rows++
		if rows == 17 {
			cancel()
		}
	}
	if !errors.Is(rs.Err(), context.Canceled) {
		t.Fatalf("Err = %v, want context.Canceled", rs.Err())
	}
	if rows != 17 {
		t.Fatalf("delivered %d rows after cancel at 17", rows)
	}
	wantVirtual(t, r, 17)
}

// TestRemoteCostEarlyClose: an abandoned stream charges the delivered
// prefix only.
func TestRemoteCostEarlyClose(t *testing.T) {
	r := costRemote()
	rs, err := r.Stream(context.Background(), costQuery)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, ok := rs.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	rs.Close()
	wantVirtual(t, r, 5)
}

// TestRemoteCostFullDrainMatchesCostModel: a fully drained stream and
// the CostModel.Cost formula agree, so the two accounting surfaces
// cannot drift.
func TestRemoteCostFullDrainMatchesCostModel(t *testing.T) {
	r := costRemote()
	res, err := r.Query(context.Background(), costQuery)
	if err != nil {
		t.Fatal(err)
	}
	wantVirtual(t, r, len(res.Rows))
	_, virtual := r.Stats()
	if got := r.Cost.Cost(len(res.Rows)); got != virtual {
		t.Fatalf("CostModel.Cost(%d) = %v, accounted %v", len(res.Rows), got, virtual)
	}
}

// TestRemoteCostLimitQuery: a LIMIT query charges the capped row count —
// the limit applies before the simulated wire, like a real endpoint.
func TestRemoteCostLimitQuery(t *testing.T) {
	r := costRemote()
	res, err := r.Query(context.Background(), costQuery+` LIMIT 9`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	wantVirtual(t, r, 9)
}

// TestRemoteCostUnavailableChargesNothing: a down endpoint never opened
// a stream, so no virtual time accrues at all.
func TestRemoteCostUnavailableChargesNothing(t *testing.T) {
	r := NewRemote("down", "http://down/sparql", streamStore(), nil, AlwaysDown(), nil)
	r.Cost = CostModel{BaseLatency: time.Millisecond, PerRow: time.Microsecond}
	if _, err := r.Stream(context.Background(), costQuery); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	if queries, virtual := r.Stats(); queries != 0 || virtual != 0 {
		t.Fatalf("stats = %d queries, %v virtual; want zero accounting", queries, virtual)
	}
}

// TestRemoteCostTapSurvivesCollectError: a mid-collect cancellation on
// the materialized Query path also charges only the delivered prefix.
func TestRemoteCostMaterializedCancel(t *testing.T) {
	r := costRemote()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, costQuery); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// the request was admitted (base latency) but no row crossed the wire
	wantVirtual(t, r, 0)
}
