package endpoint

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// streamStore builds a store big enough that streams have rows to spare
// after any early-exit point the tests cancel at. (synth would be the
// natural generator but it imports this package.)
func streamStore() *store.Store {
	st := store.New()
	classes := []rdf.Term{rdf.NewIRI("http://ex/C0"), rdf.NewIRI("http://ex/C1"), rdf.NewIRI("http://ex/C2")}
	typ := rdf.NewIRI(rdf.RDFType)
	p := rdf.NewIRI("http://ex/p")
	name := rdf.NewIRI("http://ex/name")
	for i := 0; i < 300; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://ex/i%d", i))
		st.AddSPO(s, typ, classes[i%len(classes)])
		st.AddSPO(s, p, rdf.NewIRI(fmt.Sprintf("http://ex/i%d", (i+7)%300)))
		st.AddSPO(s, name, rdf.NewLiteral(fmt.Sprintf("item %d", i)))
	}
	return st
}

func sortedRowKeys(vars []string, rows []sparql.Binding) []string {
	keys := make([]string, 0, len(rows))
	for _, r := range rows {
		var sb strings.Builder
		for _, v := range vars {
			if t, ok := r[v]; ok {
				sb.WriteString(t.String())
			}
			sb.WriteByte('\x00')
		}
		keys = append(keys, sb.String())
	}
	sort.Strings(keys)
	return keys
}

// TestHTTPStreamMatchesQuery is the over-the-wire differential: the
// streamed rows must be exactly the materialized rows (as a multiset —
// SPARQL imposes no order without ORDER BY).
func TestHTTPStreamMatchesQuery(t *testing.T) {
	srv := Serve(streamStore(), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	ctx := context.Background()
	for _, q := range []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
		`SELECT DISTINCT ?c WHERE { ?s a ?c } ORDER BY ?c`,
		`SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c`,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT 7`,
	} {
		res, err := c.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		rs, err := c.Stream(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		var rows []sparql.Binding
		for row := range rs.All() {
			rows = append(rows, row)
		}
		if rs.Err() != nil {
			t.Fatalf("%s: stream err %v", q, rs.Err())
		}
		if fmt.Sprint(rs.Vars) != fmt.Sprint(res.Vars) {
			t.Fatalf("%s: vars %v vs %v", q, rs.Vars, res.Vars)
		}
		got, want := sortedRowKeys(res.Vars, rows), sortedRowKeys(res.Vars, res.Rows)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("%s: streamed rows differ from materialized", q)
		}
	}
}

func TestHTTPStreamAsk(t *testing.T) {
	srv := Serve(streamStore(), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	rs, err := c.Stream(context.Background(), `ASK { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Ask || !rs.Boolean {
		t.Fatalf("ask = %v/%v", rs.Ask, rs.Boolean)
	}
}

// TestClientSendsAccept verifies both request paths advertise the SPARQL
// JSON results format.
func TestClientSendsAccept(t *testing.T) {
	var accepts []string
	st := streamStore()
	h := &Handler{Store: st}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		accepts = append(accepts, r.Header.Get("Accept"))
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	if _, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`); err != nil {
		t.Fatal(err)
	}
	rs, err := c.Stream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o } LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	rs.Collect()
	if len(accepts) != 2 {
		t.Fatalf("requests = %d", len(accepts))
	}
	for _, a := range accepts {
		if a != "application/sparql-results+json" {
			t.Fatalf("Accept = %q", a)
		}
	}
}

// TestHTTPStreamTruncatedBody simulates an endpoint dying mid-response:
// the client must surface a stream error, never a silently short result.
func TestHTTPStreamTruncatedBody(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		// two valid rows, then the document just stops
		fmt.Fprint(w, `{"head":{"vars":["s"]},"results":{"bindings":[`+
			`{"s":{"type":"uri","value":"http://ex/1"}},`+
			`{"s":{"type":"uri","value":"http://ex/2"}}`)
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	rs, err := c.Stream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for range rs.All() {
		rows++
	}
	if rows != 2 {
		t.Fatalf("rows before truncation = %d, want 2", rows)
	}
	if rs.Err() == nil {
		t.Fatal("truncated stream reported a clean end")
	}
}

// TestHTTPStreamInvalidJSON covers a misbehaving endpoint emitting
// garbage mid-document.
func TestHTTPStreamInvalidJSON(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/sparql-results+json")
		fmt.Fprint(w, `{"head":{"vars":["s"]},"results":{"bindings":[`+
			`{"s":{"type":"uri","value":"http://ex/1"}},`+
			`this is not json]}}`)
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	rs, err := c.Stream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	rows := 0
	for range rs.All() {
		rows++
	}
	if rows != 1 || rs.Err() == nil {
		t.Fatalf("rows = %d, err = %v; want 1 row then an error", rows, rs.Err())
	}
}

// TestHTTPStreamCancel cancels the context mid-stream and checks the
// stream stops within one row boundary with the context's error.
func TestHTTPStreamCancel(t *testing.T) {
	srv := Serve(streamStore(), nil)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rs, err := c.Stream(ctx, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	defer rs.Close()
	got := 0
	for range rs.All() {
		got++
		if got == 2 {
			cancel()
		}
		if got > 3 {
			t.Fatalf("stream kept producing after cancel: %d rows", got)
		}
	}
	if !errors.Is(rs.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want context.Canceled", rs.Err())
	}
}

// TestStreamRetriesTransientFailures exercises the jittered backoff path:
// the first two attempts get a 500, the third streams normally.
func TestStreamRetriesTransientFailures(t *testing.T) {
	failures := 2
	srv := ServeFlaky(streamStore(), &failures)
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	c.Retries = 3
	c.BaseBackoff = time.Millisecond
	c.MaxBackoff = 5 * time.Millisecond
	rs, err := c.Stream(context.Background(), `SELECT ?s WHERE { ?s ?p ?o } LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || failures != 0 {
		t.Fatalf("rows = %d, failures left = %d", len(res.Rows), failures)
	}
}

// TestRetryAfterHTTPTimeout: an http-level timeout is transient and must
// consume a retry, not short-circuit as permanent — only the caller's own
// dead context makes retrying pointless.
func TestRetryAfterHTTPTimeout(t *testing.T) {
	var slow atomic.Bool
	slow.Store(true)
	h := &Handler{Store: streamStore()}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if slow.CompareAndSwap(true, false) {
			time.Sleep(200 * time.Millisecond)
		}
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	c.HTTP = &http.Client{Timeout: 50 * time.Millisecond} // first attempt times out
	c.Retries = 2
	c.BaseBackoff = time.Millisecond
	res, err := c.Query(context.Background(), `ASK { ?s ?p ?o }`)
	if err != nil {
		t.Fatalf("timeout was not retried: %v", err)
	}
	if !res.Boolean {
		t.Fatal("wrong answer after retry")
	}
}

// TestBackoffAbortsOnCancel: a canceled context must cut the retry sleep
// short instead of serving it out.
func TestBackoffAbortsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()
	c := NewHTTPClient(srv.URL)
	c.Retries = 5
	c.BaseBackoff = time.Hour // would hang without the ctx escape
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Query(ctx, `ASK { ?s ?p ?o }`)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Query did not return after cancel during backoff")
	}
}

// TestMaxRowsQuirkStreams: the silent truncation cap applies to streams
// as a clean early stop, like a real endpoint's result cap.
func TestMaxRowsQuirkStreams(t *testing.T) {
	st := streamStore()
	rs, err := EvaluateStream(context.Background(), st, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`, &Quirks{Name: "capped", MaxRows: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rs.Collect()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("capped stream = %d rows", len(res.Rows))
	}
}

// TestRemoteStreamCostPerRow: the simulated cost model charges the base
// latency at query time and the transfer cost per row actually pulled —
// an abandoned stream stops costing.
func TestRemoteStreamCostPerRow(t *testing.T) {
	r := NewRemote("r", "http://r/sparql", streamStore(), nil, nil, nil)
	r.Cost = CostModel{BaseLatency: time.Millisecond, PerRow: time.Microsecond}
	rs, err := r.Stream(context.Background(), `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, ok := rs.Next(); !ok {
			t.Fatal("stream ended early")
		}
	}
	rs.Close()
	queries, virtual := r.Stats()
	want := time.Millisecond + 3*time.Microsecond
	if queries != 1 || virtual != want {
		t.Fatalf("stats = %d queries, %v virtual; want 1, %v", queries, virtual, want)
	}
}

// TestRemoteQueryHonorsCancel: even the materialized Query path of a
// simulated remote aborts mid-evaluation when the context dies.
func TestRemoteQueryHonorsCancel(t *testing.T) {
	r := NewRemote("r", "http://r/sparql", streamStore(), nil, nil, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Query(ctx, `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
