package endpoint

import "repro/internal/resilience"

// Source is one member of a federation: a named Client plus the metadata
// the routing layer selects and orders by. It is deliberately a plain
// value — the federation layer owns scheduling and stats; a Source only
// describes where a query could go and what sending it there costs.
type Source struct {
	// Name labels the source in stats and error messages; defaults to URL.
	Name string
	// URL is the endpoint URL — the key under which the registry and the
	// document store know this source, so the federation layer can look up
	// its extracted index.
	URL string
	// Client answers queries for this source.
	Client Client
	// Cost is the virtual cost model used by cost-ordered selection.
	// The zero value sorts as free; use DefaultCost for a realistic one.
	Cost CostModel
	// Generation is the extraction generation the source's index metadata
	// was read at; 0 means never extracted (no index to prune by).
	Generation uint64
	// Up optionally probes availability before fan-out; nil means assumed
	// up. A Remote's Up method fits directly.
	Up func() bool
	// Breaker, when set, is the source's circuit breaker: the federation
	// layer consults it before fan-out (a tripped source costs zero
	// requests) and records stream outcomes into it; the scheduler's
	// failure-recording path shares the same breaker, so extraction
	// failures trip the one federation queries consult. Nil means no
	// breaking — every call is admitted.
	Breaker *resilience.Breaker
}

// NewSource builds a source with the zero cost model and no availability
// probe; name defaults to url.
func NewSource(name, url string, c Client) *Source {
	if name == "" {
		name = url
	}
	return &Source{Name: name, URL: url, Client: c}
}

// Available reports whether the source is currently believed reachable.
func (s *Source) Available() bool {
	return s.Up == nil || s.Up()
}

// Label returns the display name, falling back to the URL.
func (s *Source) Label() string {
	if s.Name != "" {
		return s.Name
	}
	return s.URL
}
