package endpoint

import (
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
)

// TestHandlerAccessLog: with a logger attached, every protocol request
// leaves one structured record carrying the method, query hash, rows
// streamed, duration and status.
func TestHandlerAccessLog(t *testing.T) {
	var buf strings.Builder
	h := &Handler{Store: testStore(t), Log: slog.New(slog.NewTextHandler(&buf, nil))}
	srv := httptest.NewServer(h)
	defer srv.Close()

	query := `SELECT ?s WHERE { ?s a <http://ex/C> }`
	resp, err := http.Get(srv.URL + "?query=" + url.QueryEscape(query))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}

	rec := buf.String()
	for _, want := range []string{
		"method=GET",
		"query=" + QueryHash(query),
		"rows=2",
		"status=200",
		"dur=",
	} {
		if !strings.Contains(rec, want) {
			t.Errorf("access record lacks %q: %q", want, rec)
		}
	}
	if n := strings.Count(rec, "method="); n != 1 {
		t.Fatalf("expected exactly one record, got %d: %q", n, rec)
	}
}

// TestHandlerAccessLogError: failed requests record their status too.
func TestHandlerAccessLogError(t *testing.T) {
	var buf strings.Builder
	h := &Handler{Store: testStore(t), Log: slog.New(slog.NewTextHandler(&buf, nil))}
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL) // no query parameter
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if rec := buf.String(); !strings.Contains(rec, "status=400") {
		t.Fatalf("record lacks status=400: %q", rec)
	}
}
