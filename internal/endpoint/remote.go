package endpoint

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/sparql"
	"repro/internal/store"
)

// ErrUnavailable is returned when a simulated remote endpoint is down,
// reproducing the paper's observation that "a SPARQL Endpoint might be
// often not available ... it might work again after 1 or 2 days" (§3.1).
var ErrUnavailable = errors.New("endpoint: unavailable")

// Client is anything that can answer SPARQL queries: a local store, an
// HTTP endpoint, or a simulated remote. The context carries the caller's
// deadline and cancellation down to the wire: an extraction job stopped
// by the scheduler, a closed HTTP request, or a CLI timeout aborts the
// query instead of letting it run to completion.
type Client interface {
	// Query executes a SPARQL query and returns its materialized result.
	Query(ctx context.Context, query string) (*sparql.Result, error)
}

// Streamer is implemented by clients that can deliver results
// incrementally. Consumers should not type-assert for it directly; use
// the package-level Stream, which falls back to a materialized query for
// plain Clients.
type Streamer interface {
	// Stream executes a SPARQL query and returns its rows as a stream.
	// The caller must drain or Close the stream.
	Stream(ctx context.Context, query string) (*sparql.RowSeq, error)
}

// Explainer is implemented by clients that can profile a query instead
// of answering it: the query runs to completion, but what comes back is
// the compiled plan annotated with per-stage row counts and timings.
// Only in-process clients can explain — the SPARQL protocol has no
// EXPLAIN verb, so remote clients do not implement this.
type Explainer interface {
	// Explain executes the query with profiling and returns the
	// annotated plan instead of rows.
	Explain(ctx context.Context, query string) (*sparql.Explain, error)
}

// Stream returns a row stream from any client: natively when c
// implements Streamer, otherwise by materializing the result and
// streaming from it (still honoring ctx between rows).
func Stream(ctx context.Context, c Client, query string) (*sparql.RowSeq, error) {
	if s, ok := c.(Streamer); ok {
		return s.Stream(ctx, query)
	}
	res, err := c.Query(ctx, query)
	if err != nil {
		return nil, err
	}
	return sparql.ResultSeq(res), nil
}

// Availability is a deterministic day-granular outage schedule. Starting
// from day zero the endpoint is up; on each up day an outage begins with
// probability OutageProb and lasts one or two days.
type Availability struct {
	mu         sync.Mutex
	rng        *rand.Rand
	alwaysDown bool
	OutageProb float64
	// schedule[i] reports whether the endpoint is up on day i; extended
	// lazily.
	schedule []bool
}

// NewAvailability builds a schedule with the given seed and outage
// probability. A probability of 0 yields an always-up endpoint.
func NewAvailability(seed int64, outageProb float64) *Availability {
	return &Availability{rng: rand.New(rand.NewSource(seed)), OutageProb: outageProb}
}

// AlwaysDown returns the schedule of a dead endpoint: every day is an
// outage, modelling the "no longer available" entries of the old DataHub
// list (§3.3).
func AlwaysDown() *Availability {
	return &Availability{alwaysDown: true}
}

// UpOn reports whether the endpoint is up on the given day index
// (days since clock.Epoch). Negative days are treated as day 0.
func (a *Availability) UpOn(day int) bool {
	if day < 0 {
		day = 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.alwaysDown {
		return false
	}
	for len(a.schedule) <= day {
		if a.rng.Float64() < a.OutageProb {
			// An outage starts today lasting 1 or 2 days, and the endpoint
			// "works again after 1 or 2 days": the recovery day is up, so
			// outages never chain into longer blackouts.
			for n := 1 + a.rng.Intn(2); n > 0; n-- {
				a.schedule = append(a.schedule, false)
			}
			a.schedule = append(a.schedule, true)
			continue
		}
		a.schedule = append(a.schedule, true)
	}
	return a.schedule[day]
}

// DayIndex converts a time to a day index relative to clock.Epoch.
func DayIndex(t time.Time) int {
	return int(t.Sub(clock.Epoch) / (24 * time.Hour))
}

// CostModel assigns a virtual wall-clock cost to each query, standing in
// for network latency and transfer time of a live endpoint. Costs are
// accounted, not slept, so experiments over hundreds of endpoints finish
// quickly while still reporting realistic totals.
type CostModel struct {
	BaseLatency time.Duration // per request
	PerRow      time.Duration // per result row
}

// DefaultCost approximates a public endpoint over the internet.
var DefaultCost = CostModel{BaseLatency: 150 * time.Millisecond, PerRow: 50 * time.Microsecond}

// Cost returns the virtual cost of a query yielding n rows.
func (c CostModel) Cost(rows int) time.Duration {
	return c.BaseLatency + time.Duration(rows)*c.PerRow
}

// Remote simulates one public SPARQL endpoint: a dataset behind the
// protocol with an availability schedule, an engine quirk profile and a
// virtual cost model.
type Remote struct {
	Name  string
	URL   string
	Store *store.Store

	Quirks *Quirks
	Avail  *Availability
	Cost   CostModel
	Clock  clock.Clock

	mu      sync.Mutex
	queries int
	virtual time.Duration
}

// NewRemote builds a simulated endpoint around a store. A nil avail means
// always available; a nil clock means the real clock.
func NewRemote(name, url string, st *store.Store, quirks *Quirks, avail *Availability, ck clock.Clock) *Remote {
	if ck == nil {
		ck = clock.Real{}
	}
	return &Remote{
		Name: name, URL: url, Store: st,
		Quirks: quirks, Avail: avail, Cost: DefaultCost, Clock: ck,
	}
}

// Up reports whether the endpoint is currently reachable.
func (r *Remote) Up() bool {
	if r.Avail == nil {
		return true
	}
	return r.Avail.UpOn(DayIndex(r.Clock.Now()))
}

// Query implements Client. It fails with ErrUnavailable on down days and
// otherwise evaluates the query under the endpoint's quirks, accounting
// virtual time. It is the materialized view of Stream, so cancellation
// is honored mid-query and cost accrues per row either way.
func (r *Remote) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := r.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

// Stream implements Streamer. Availability is checked when the query
// arrives, the base latency is charged up front and the per-row transfer
// cost as each row crosses the simulated wire; canceling ctx mid-stream
// stops the evaluation within one row.
func (r *Remote) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	if !r.Up() {
		return nil, fmt.Errorf("%w: %s", ErrUnavailable, r.Name)
	}
	r.mu.Lock()
	r.queries++
	r.virtual += r.Cost.BaseLatency
	r.mu.Unlock()
	rs, err := EvaluateStream(ctx, r.Store, query, r.Quirks)
	if err != nil {
		return nil, err
	}
	return rs.Tap(func(sparql.Binding) {
		r.mu.Lock()
		r.virtual += r.Cost.PerRow
		r.mu.Unlock()
	}), nil
}

// Stats returns the number of queries served and the accumulated virtual
// time.
func (r *Remote) Stats() (queries int, virtual time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.queries, r.virtual
}

// LocalClient adapts a bare store to the Client interface (no protocol,
// no quirks); used when H-BOLD components query their own storage.
type LocalClient struct {
	Store store.Queryable
}

// Query implements Client by collecting the stream, so cancellation is
// honored mid-query even for in-process evaluation.
func (c LocalClient) Query(ctx context.Context, query string) (*sparql.Result, error) {
	rs, err := c.Stream(ctx, query)
	if err != nil {
		return nil, err
	}
	return rs.Collect()
}

// Stream implements Streamer straight off the engine's row pipeline.
func (c LocalClient) Stream(ctx context.Context, query string) (*sparql.RowSeq, error) {
	return sparql.StreamExec(ctx, c.Store, query)
}

// Explain implements Explainer: the query executes against the local
// store with the profiler attached and the annotated plan comes back
// instead of rows.
func (c LocalClient) Explain(ctx context.Context, query string) (*sparql.Explain, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	return q.Explain(c.Store)
}
