// The SPARQL protocol update surface. These tests live in the external
// test package so they can wire internal/update through the Handler's
// UpdateFunc callback — the endpoint package itself must stay free of
// the update subsystem (update imports schema, whose extraction layer
// imports endpoint).
package endpoint_test

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/store"
	"repro/internal/turtle"
	"repro/internal/update"
)

func updateStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
ex:a a ex:C .
ex:b a ex:C .
`)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

// wire builds a protocol handler whose update surface mutates st, the
// same shape cmd/hbold's sparqld uses.
func wire(st *store.Store) *endpoint.Handler {
	h := &endpoint.Handler{Store: st}
	h.Update = func(ctx context.Context, text string) (int, int, error) {
		d, err := update.ApplyText(ctx, st, text)
		if err != nil {
			return 0, 0, err
		}
		return len(d.Added), len(d.Removed), nil
	}
	return h
}

func postUpdate(t testing.TB, srv *httptest.Server, contentType, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(srv.URL, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

func countRows(t testing.TB, srv *httptest.Server, query string) int {
	t.Helper()
	c := endpoint.NewHTTPClient(srv.URL)
	res, err := c.Query(context.Background(), query)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

func TestUpdateSurfaceRawBody(t *testing.T) {
	st := updateStore(t)
	srv := httptest.NewServer(wire(st))
	defer srv.Close()

	code, body := postUpdate(t, srv, "application/sparql-update",
		`INSERT DATA { <http://ex/c> a <http://ex/C> }`)
	if code != 200 {
		t.Fatalf("status = %d, body %q", code, body)
	}
	if strings.TrimSpace(body) != `{"added":1,"removed":0}` {
		t.Fatalf("body = %q", body)
	}
	if n := countRows(t, srv, `SELECT ?s WHERE { ?s a <http://ex/C> }`); n != 3 {
		t.Fatalf("instances after insert = %d, want 3", n)
	}
}

func TestUpdateSurfaceFormField(t *testing.T) {
	st := updateStore(t)
	srv := httptest.NewServer(wire(st))
	defer srv.Close()

	form := url.Values{"update": {`DELETE DATA { <http://ex/b> a <http://ex/C> }`}}
	code, body := postUpdate(t, srv, "application/x-www-form-urlencoded", form.Encode())
	if code != 200 {
		t.Fatalf("status = %d, body %q", code, body)
	}
	if strings.TrimSpace(body) != `{"added":0,"removed":1}` {
		t.Fatalf("body = %q", body)
	}
	if n := countRows(t, srv, `SELECT ?s WHERE { ?s a <http://ex/C> }`); n != 1 {
		t.Fatalf("instances after delete = %d, want 1", n)
	}
}

func TestUpdateSurfaceModify(t *testing.T) {
	st := updateStore(t)
	srv := httptest.NewServer(wire(st))
	defer srv.Close()

	code, body := postUpdate(t, srv, "application/sparql-update",
		`DELETE { ?s a <http://ex/C> } INSERT { ?s a <http://ex/D> } WHERE { ?s a <http://ex/C> }`)
	if code != 200 {
		t.Fatalf("status = %d, body %q", code, body)
	}
	if strings.TrimSpace(body) != `{"added":2,"removed":2}` {
		t.Fatalf("body = %q", body)
	}
	if n := countRows(t, srv, `SELECT ?s WHERE { ?s a <http://ex/D> }`); n != 2 {
		t.Fatalf("reclassified instances = %d, want 2", n)
	}
}

func TestUpdateSurfaceReadOnly(t *testing.T) {
	st := updateStore(t)
	h := wire(st)
	h.ReadOnly = true
	srv := httptest.NewServer(h)
	defer srv.Close()

	code, _ := postUpdate(t, srv, "application/sparql-update",
		`INSERT DATA { <http://ex/c> a <http://ex/C> }`)
	if code != http.StatusForbidden {
		t.Fatalf("read-only update status = %d, want 403", code)
	}
	if st.Len() != 2 {
		t.Fatalf("store mutated through read-only surface: %d triples", st.Len())
	}
	// the query surface stays up in read-only mode
	if n := countRows(t, srv, `SELECT ?s WHERE { ?s a <http://ex/C> }`); n != 2 {
		t.Fatalf("read-only query rows = %d, want 2", n)
	}
}

func TestUpdateSurfaceUnwired(t *testing.T) {
	srv := httptest.NewServer(&endpoint.Handler{Store: updateStore(t)})
	defer srv.Close()
	code, _ := postUpdate(t, srv, "application/sparql-update",
		`INSERT DATA { <http://ex/c> a <http://ex/C> }`)
	if code != http.StatusForbidden {
		t.Fatalf("unwired update status = %d, want 403", code)
	}
}

func TestUpdateSurfaceBadSyntax(t *testing.T) {
	srv := httptest.NewServer(wire(updateStore(t)))
	defer srv.Close()
	code, _ := postUpdate(t, srv, "application/sparql-update", `INSERT GARBAGE`)
	if code != http.StatusBadRequest {
		t.Fatalf("bad update status = %d, want 400", code)
	}
}
