package update_test

// Differential fuzz over the mutation path: the same seeded random
// update stream (synth.UpdateGen) applies to an empty memory tier and an
// empty disk tier. After every step the two deltas must be identical;
// periodically a query battery runs across all three engine paths
// (streaming, ID-space, legacy term-space) on both tiers and every
// answer must agree; at the end the full materialized triple sets must
// be equal. Any divergence — in incremental posting maintenance, WAL
// replay, tombstone handling, or engine semantics over deleted data —
// surfaces as a seed+step reproducible failure.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/synth"
	"repro/internal/update"
)

// fuzzBattery probes the fuzz vocabulary from several angles.
var fuzzBattery = []string{
	`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?s ?p ?o`,
	`SELECT DISTINCT ?p WHERE { ?s ?p ?o } ORDER BY ?p`,
	`SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c ORDER BY ?c`,
	`SELECT ?s WHERE { ?s <http://fuzz/p1> ?o . ?o a ?c } ORDER BY ?s`,
	`SELECT ?s ?o WHERE { ?s <http://fuzz/p0> ?o FILTER(isLiteral(?o)) } ORDER BY ?s ?o`,
}

// resultKey flattens a result into a comparable string.
func resultKey(res *sparql.Result) string {
	lines := make([]string, 0, len(res.Rows))
	for _, row := range res.Rows {
		var sb strings.Builder
		for _, v := range res.Vars {
			if term, ok := row[v]; ok {
				sb.WriteString(term.String())
			}
			sb.WriteByte('\t')
		}
		lines = append(lines, sb.String())
	}
	return strings.Join(lines, "\n")
}

// engineAnswers evaluates query on st through all three paths and fails
// if they disagree among themselves.
func engineAnswers(t *testing.T, st store.Queryable, query string) string {
	t.Helper()
	q, err := sparql.Parse(query)
	if err != nil {
		t.Fatal(err)
	}
	auto, err := q.ExecEngine(st, sparql.EngineAuto)
	if err != nil {
		t.Fatalf("auto: %v", err)
	}
	legacy, err := q.ExecEngine(st, sparql.EngineLegacy)
	if err != nil {
		t.Fatalf("legacy: %v", err)
	}
	rs, err := q.Stream(context.Background(), st)
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	streamed, err := rs.Collect()
	if err != nil {
		t.Fatalf("stream collect: %v", err)
	}
	a, l, s := resultKey(auto), resultKey(legacy), resultKey(streamed)
	if a != l || a != s {
		t.Fatalf("engines disagree on %q:\nauto:\n%s\nlegacy:\n%s\nstream:\n%s", query, a, l, s)
	}
	return a
}

// materialize returns the sorted triple set of a backend.
func materialize(t *testing.T, be store.Backend) []string {
	t.Helper()
	var out []string
	be.Match(store.Pattern{}, func(tr rdf.Triple) bool {
		out = append(out, tr.String())
		return true
	})
	sort.Strings(out)
	return out
}

func TestDifferentialUpdateFuzz(t *testing.T) {
	const steps = 120
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			mem := store.New()
			dir := t.TempDir()
			ds, err := disk.Open(dir, disk.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer ds.Close()

			gen := synth.NewUpdateGen(seed)
			ctx := context.Background()
			for i := 0; i < steps; i++ {
				text := gen.Update()
				dm, err := update.ApplyText(ctx, mem, text)
				if err != nil {
					t.Fatalf("step %d (memory) %q: %v", i, text, err)
				}
				dd, err := update.ApplyText(ctx, ds, text)
				if err != nil {
					t.Fatalf("step %d (disk) %q: %v", i, text, err)
				}
				if len(dm.Added) != len(dd.Added) || len(dm.Removed) != len(dd.Removed) {
					t.Fatalf("step %d %q: deltas diverge: memory +%d/-%d, disk +%d/-%d",
						i, text, len(dm.Added), len(dm.Removed), len(dd.Added), len(dd.Removed))
				}
				if mem.Len() != ds.Len() {
					t.Fatalf("step %d %q: memory %d triples, disk %d", i, text, mem.Len(), ds.Len())
				}
				if i%20 == 19 {
					for _, q := range fuzzBattery {
						if m, d := engineAnswers(t, mem, q), engineAnswers(t, ds, q); m != d {
							t.Fatalf("step %d: tiers disagree on %q:\nmemory:\n%s\ndisk:\n%s", i, q, m, d)
						}
					}
				}
			}

			// the final states must be triple-for-triple identical
			sm, sd := materialize(t, mem), materialize(t, ds)
			if len(sm) != len(sd) {
				t.Fatalf("final sizes diverge: memory %d, disk %d", len(sm), len(sd))
			}
			for i := range sm {
				if sm[i] != sd[i] {
					t.Fatalf("final sets diverge at %d: memory %q, disk %q", i, sm[i], sd[i])
				}
			}

			// and a restart of the disk tier replays to the same state
			if err := ds.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := disk.Open(dir, disk.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if sr := materialize(t, re); len(sr) != len(sm) {
				t.Fatalf("restarted disk tier has %d triples, want %d", len(sr), len(sm))
			}
		})
	}
}
