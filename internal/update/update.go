// Package update is the live mutation subsystem: it applies parsed
// SPARQL 1.1 Update requests (sparql.ParseUpdate) to any writable
// storage tier through the store.Backend seam.
//
// Semantics follow SPARQL 1.1 Update: the operations of one request run
// in order; a pattern operation (DELETE/INSERT ... WHERE) evaluates its
// WHERE clause once against the state left by the previous operation —
// through the same compiled-plan path as a SELECT query — and both
// templates are instantiated against that single solution sequence, with
// all deletes applied before any inserts. The whole request stays in the
// tier's pending batch until one final Flush, so on the disk tier an
// update commits as a single crash-safe WAL record (requests larger than
// the tier's batch bound commit in ordered chunks).
package update

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
)

// Delta is the net effect of an applied update request: the triples that
// are present now but weren't before (Added) and vice versa (Removed),
// each sorted. A triple deleted and re-inserted by the same request
// appears in neither.
type Delta struct {
	Added   []rdf.Triple
	Removed []rdf.Triple
}

// Empty reports whether the update changed nothing.
func (d *Delta) Empty() bool { return len(d.Added) == 0 && len(d.Removed) == 0 }

// applier tracks the net triple delta while ops execute.
type applier struct {
	be      store.Backend
	added   map[rdf.Triple]bool
	removed map[rdf.Triple]bool
}

// Apply executes a parsed update request against a backend and returns
// the net delta. On error the pending batch is NOT flushed; the disk
// tier discards un-flushed staging on its next write-path error
// handling, and callers should not reuse the backend's pending state —
// in practice every error here is a parse-shape or context error raised
// before any triple landed, or a storage error that poisons the batch
// anyway.
func Apply(ctx context.Context, be store.Backend, u *sparql.Update) (*Delta, error) {
	a := &applier{
		be:      be,
		added:   make(map[rdf.Triple]bool),
		removed: make(map[rdf.Triple]bool),
	}
	for _, op := range u.Ops {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var err error
		switch op := op.(type) {
		case *sparql.InsertData:
			err = a.insertGround(op.Triples)
		case *sparql.DeleteData:
			err = a.deleteGround(op.Triples)
		case *sparql.Modify:
			err = a.modify(ctx, u, op)
		default:
			err = fmt.Errorf("update: unknown operation %T", op)
		}
		if err != nil {
			return nil, err
		}
	}
	if err := a.be.Flush(); err != nil {
		return nil, err
	}
	d := &Delta{
		Added:   sortedTriples(a.added),
		Removed: sortedTriples(a.removed),
	}
	return d, nil
}

// ApplyText parses and applies an update request string.
func ApplyText(ctx context.Context, be store.Backend, text string) (*Delta, error) {
	u, err := sparql.ParseUpdate(text)
	if err != nil {
		return nil, err
	}
	return Apply(ctx, be, u)
}

func (a *applier) insert(t rdf.Triple) error {
	ok, err := a.be.Insert(t)
	if err != nil || !ok {
		return err
	}
	if a.removed[t] {
		delete(a.removed, t)
	} else {
		a.added[t] = true
	}
	return nil
}

func (a *applier) delete(t rdf.Triple) error {
	ok, err := a.be.Delete(t)
	if err != nil || !ok {
		return err
	}
	if a.added[t] {
		delete(a.added, t)
	} else {
		a.removed[t] = true
	}
	return nil
}

func (a *applier) insertGround(tmpl []sparql.TriplePattern) error {
	for _, tp := range tmpl {
		t, ok := groundTriple(tp)
		if !ok {
			continue
		}
		if err := a.insert(t); err != nil {
			return err
		}
	}
	return nil
}

func (a *applier) deleteGround(tmpl []sparql.TriplePattern) error {
	for _, tp := range tmpl {
		t, ok := groundTriple(tp)
		if !ok {
			continue
		}
		if err := a.delete(t); err != nil {
			return err
		}
	}
	return nil
}

// modify runs one DELETE/INSERT ... WHERE operation: bind the WHERE
// pattern through the engine, materialize the solution sequence (both
// templates must see the pre-operation state), then apply all deletes
// followed by all inserts.
func (a *applier) modify(ctx context.Context, u *sparql.Update, op *sparql.Modify) error {
	q := &sparql.Query{
		Form:     sparql.FormSelect,
		Star:     true,
		Prefixes: u.Prefixes,
		Where:    op.Where,
		Limit:    -1,
	}
	rows, err := q.Stream(ctx, a.be)
	if err != nil {
		return err
	}
	var solutions []sparql.Binding
	for b := range rows.All() {
		solutions = append(solutions, b)
	}
	if err := rows.Err(); err != nil {
		return err
	}
	for _, b := range solutions {
		for _, tp := range op.Delete {
			if t, ok := instantiate(tp, b, nil); ok {
				if err := a.delete(t); err != nil {
					return err
				}
			}
		}
	}
	// Blank nodes in an INSERT template denote fresh nodes per solution.
	for i, b := range solutions {
		bnodes := map[string]rdf.Term{}
		fresh := func(label string) rdf.Term {
			t, ok := bnodes[label]
			if !ok {
				t = rdf.NewBlank(fmt.Sprintf("u%d_%s", i, label))
				bnodes[label] = t
			}
			return t
		}
		for _, tp := range op.Insert {
			if t, ok := instantiate(tp, b, fresh); ok {
				if err := a.insert(t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// groundTriple converts a variable-free template triple, dropping
// position-invalid ones (literal subject or non-IRI predicate) the same
// way instantiation does.
func groundTriple(tp sparql.TriplePattern) (rdf.Triple, bool) {
	t := rdf.Triple{S: tp.S.Term, P: tp.P.Term, O: tp.O.Term}
	return t, validTriple(t)
}

// instantiate substitutes a solution's bindings into a template triple.
// ok is false when a template variable is unbound in this solution or
// the substituted triple is not a valid RDF triple — per SPARQL 1.1
// Update, such instantiations are skipped, not errors. fresh, when
// non-nil, remaps blank-node labels (INSERT templates).
func instantiate(tp sparql.TriplePattern, b sparql.Binding, fresh func(string) rdf.Term) (rdf.Triple, bool) {
	resolve := func(n sparql.NodePattern) (rdf.Term, bool) {
		if n.IsVar() {
			t, ok := b[n.Var]
			return t, ok && !t.IsZero()
		}
		if fresh != nil && n.Term.IsBlank() {
			return fresh(n.Term.Value), true
		}
		return n.Term, true
	}
	var t rdf.Triple
	var ok bool
	if t.S, ok = resolve(tp.S); !ok {
		return t, false
	}
	if t.P, ok = resolve(tp.P); !ok {
		return t, false
	}
	if t.O, ok = resolve(tp.O); !ok {
		return t, false
	}
	return t, validTriple(t)
}

// validTriple enforces RDF positional rules: subjects are IRIs or blank
// nodes, predicates are IRIs.
func validTriple(t rdf.Triple) bool {
	if t.S.IsZero() || t.P.IsZero() || t.O.IsZero() {
		return false
	}
	if t.S.IsLiteral() || !t.P.IsIRI() {
		return false
	}
	return true
}

func sortedTriples(set map[rdf.Triple]bool) []rdf.Triple {
	if len(set) == 0 {
		return nil
	}
	out := make([]rdf.Triple, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].S.Compare(out[j].S); c != 0 {
			return c < 0
		}
		if c := out[i].P.Compare(out[j].P); c != 0 {
			return c < 0
		}
		return out[i].O.Compare(out[j].O) < 0
	})
	return out
}
