package update_test

import (
	"context"
	"fmt"
	"sort"
	"testing"

	"repro/internal/rdf"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/update"
)

func iri(s string) rdf.Term { return rdf.NewIRI("http://ex/" + s) }

// backends returns both tiers pre-loaded with the same fixture.
func backends(t *testing.T) map[string]store.Backend {
	t.Helper()
	out := map[string]store.Backend{}
	for _, name := range []string{"memory", "disk"} {
		var be store.Backend
		if name == "memory" {
			be = store.New()
		} else {
			ds, err := disk.Open(t.TempDir(), disk.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { ds.Close() })
			be = ds
		}
		seed := []rdf.Triple{
			rdf.NewTriple(iri("alice"), iri("knows"), iri("bob")),
			rdf.NewTriple(iri("bob"), iri("knows"), iri("carol")),
			rdf.NewTriple(iri("alice"), iri("age"), rdf.NewInteger(34)),
			rdf.NewTriple(iri("bob"), iri("age"), rdf.NewInteger(29)),
		}
		for _, tr := range seed {
			if _, err := be.Insert(tr); err != nil {
				t.Fatal(err)
			}
		}
		if err := be.Flush(); err != nil {
			t.Fatal(err)
		}
		out[name] = be
	}
	return out
}

func apply(t *testing.T, be store.Backend, text string) *update.Delta {
	t.Helper()
	d, err := update.ApplyText(context.Background(), be, text)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func count(t *testing.T, be store.Backend, query string) int {
	t.Helper()
	res, err := sparql.Exec(be, query)
	if err != nil {
		t.Fatal(err)
	}
	return len(res.Rows)
}

func TestInsertDataBothTiers(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			d := apply(t, be, `PREFIX ex: <http://ex/>
				INSERT DATA { ex:carol ex:knows ex:alice . ex:alice ex:knows ex:bob }`)
			if len(d.Added) != 1 || len(d.Removed) != 0 {
				t.Fatalf("delta = +%d -%d, want +1 -0 (one triple pre-existing)", len(d.Added), len(d.Removed))
			}
			if got := count(t, be, `SELECT ?s WHERE { ?s <http://ex/knows> ?o }`); got != 3 {
				t.Fatalf("knows rows = %d, want 3", got)
			}
			if be.Len() != 5 {
				t.Fatalf("Len = %d, want 5", be.Len())
			}
		})
	}
}

func TestDeleteDataBothTiers(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			d := apply(t, be, `PREFIX ex: <http://ex/>
				DELETE DATA { ex:alice ex:knows ex:bob . ex:alice ex:knows ex:nobody }`)
			if len(d.Removed) != 1 || len(d.Added) != 0 {
				t.Fatalf("delta = +%d -%d, want +0 -1 (one triple absent)", len(d.Added), len(d.Removed))
			}
			if got := count(t, be, `SELECT ?s WHERE { ?s <http://ex/knows> ?o }`); got != 1 {
				t.Fatalf("knows rows = %d, want 1", got)
			}
		})
	}
}

func TestDeleteInsertWhereBothTiers(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// Rename the predicate: every ex:knows edge becomes ex:met.
			d := apply(t, be, `PREFIX ex: <http://ex/>
				DELETE { ?s ex:knows ?o } INSERT { ?s ex:met ?o } WHERE { ?s ex:knows ?o }`)
			if len(d.Removed) != 2 || len(d.Added) != 2 {
				t.Fatalf("delta = +%d -%d, want +2 -2", len(d.Added), len(d.Removed))
			}
			if got := count(t, be, `SELECT ?s WHERE { ?s <http://ex/knows> ?o }`); got != 0 {
				t.Fatalf("knows rows = %d, want 0", got)
			}
			if got := count(t, be, `SELECT ?s WHERE { ?s <http://ex/met> ?o }`); got != 2 {
				t.Fatalf("met rows = %d, want 2", got)
			}
		})
	}
}

func TestDeleteWhereShorthand(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			apply(t, be, `DELETE WHERE { <http://ex/alice> ?p ?o }`)
			if got := count(t, be, `SELECT ?o WHERE { <http://ex/alice> ?p ?o }`); got != 0 {
				t.Fatalf("alice rows = %d, want 0", got)
			}
			if got := count(t, be, `SELECT ?o WHERE { <http://ex/bob> ?p ?o }`); got != 2 {
				t.Fatalf("bob rows = %d, want 2", got)
			}
		})
	}
}

func TestModifyWithFilterBindsThroughPlanPath(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			d := apply(t, be, `PREFIX ex: <http://ex/>
				DELETE { ?s ex:age ?a } INSERT { ?s ex:senior "yes" } WHERE { ?s ex:age ?a . FILTER(?a > 30) }`)
			if len(d.Removed) != 1 || len(d.Added) != 1 {
				t.Fatalf("delta = +%d -%d, want +1 -1", len(d.Added), len(d.Removed))
			}
			if got := count(t, be, `SELECT ?a WHERE { ?s <http://ex/age> ?a }`); got != 1 {
				t.Fatalf("age rows = %d, want 1", got)
			}
		})
	}
}

func TestSequenceSeesPriorOps(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// The second op's WHERE must see the first op's insert.
			d := apply(t, be, `PREFIX ex: <http://ex/>
				INSERT DATA { ex:dave ex:age 40 } ;
				INSERT { ?s ex:checked "yes" } WHERE { ?s ex:age ?a . FILTER(?a = 40) }`)
			if len(d.Added) != 2 {
				t.Fatalf("delta = +%d, want +2", len(d.Added))
			}
			if got := count(t, be, `SELECT ?s WHERE { <http://ex/dave> <http://ex/checked> "yes" }`); got != 1 {
				t.Fatalf("checked rows = %d, want 1", got)
			}
		})
	}
}

func TestDeleteTheReinsertNetsOut(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			d := apply(t, be, `PREFIX ex: <http://ex/>
				DELETE DATA { ex:alice ex:knows ex:bob } ;
				INSERT DATA { ex:alice ex:knows ex:bob }`)
			if !d.Empty() {
				t.Fatalf("delta = +%d -%d, want empty", len(d.Added), len(d.Removed))
			}
			if got := count(t, be, `SELECT ?o WHERE { <http://ex/alice> <http://ex/knows> ?o }`); got != 1 {
				t.Fatalf("rows = %d, want 1", got)
			}
		})
	}
}

func TestUnboundTemplateVarSkipsInstantiation(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// ?n is only bound where a name exists; no names in the
			// fixture, so OPTIONAL leaves ?n unbound and nothing inserts.
			d := apply(t, be, `PREFIX ex: <http://ex/>
				INSERT { ?s ex:label ?n } WHERE { ?s ex:age ?a . OPTIONAL { ?s ex:name ?n } }`)
			if len(d.Added) != 0 {
				t.Fatalf("delta = +%d, want +0", len(d.Added))
			}
		})
	}
}

func TestInsertBlankNodesFreshPerSolution(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			apply(t, be, `PREFIX ex: <http://ex/>
				INSERT { ?s ex:card _:b . _:b ex:of ?s } WHERE { ?s ex:age ?a }`)
			// Two solutions → two distinct blank nodes → 4 triples.
			if got := count(t, be, `SELECT DISTINCT ?b WHERE { ?s <http://ex/card> ?b }`); got != 2 {
				t.Fatalf("distinct blanks = %d, want 2", got)
			}
		})
	}
}

func TestLiteralSubjectInstantiationSkipped(t *testing.T) {
	for name, be := range backends(t) {
		t.Run(name, func(t *testing.T) {
			// ?a binds to a literal; using it as subject is invalid and
			// the instantiation is skipped, not an error.
			d := apply(t, be, `PREFIX ex: <http://ex/>
				INSERT { ?a ex:seen "yes" } WHERE { ?s ex:age ?a }`)
			if len(d.Added) != 0 {
				t.Fatalf("delta = +%d, want +0", len(d.Added))
			}
		})
	}
}

func TestDiskUpdateSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	ds, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ds.Insert(rdf.NewTriple(iri("a"), iri("p"), iri("b"))); err != nil {
		t.Fatal(err)
	}
	apply(t, ds, `PREFIX ex: <http://ex/>
		INSERT DATA { ex:c ex:p ex:d } ;
		DELETE DATA { ex:a ex:p ex:b }`)
	if err := ds.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := disk.Open(dir, disk.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 1 {
		t.Fatalf("reopened Len = %d, want 1", re.Len())
	}
	if got := count(t, re, `SELECT ?o WHERE { <http://ex/c> <http://ex/p> ?o }`); got != 1 {
		t.Fatalf("inserted triple missing after restart")
	}
	if got := count(t, re, `SELECT ?o WHERE { <http://ex/a> <http://ex/p> ?o }`); got != 0 {
		t.Fatalf("deleted triple back after restart")
	}
}

// TestBothTiersConvergeUnderUpdates is the tentpole acceptance check in
// miniature: the same update stream applied to both tiers leaves them
// answering identically on all three engines.
func TestBothTiersConvergeUnderUpdates(t *testing.T) {
	bes := backends(t)
	updates := []string{
		`PREFIX ex: <http://ex/> INSERT DATA { ex:carol ex:age 41 . ex:carol ex:knows ex:alice }`,
		`PREFIX ex: <http://ex/> DELETE { ?s ex:knows ?o } INSERT { ?o ex:knownBy ?s } WHERE { ?s ex:knows ?o . FILTER(?o != ex:carol) }`,
		`PREFIX ex: <http://ex/> DELETE WHERE { ex:bob ?p ?o }`,
		`PREFIX ex: <http://ex/> INSERT { ?s ex:aged ?a } WHERE { ?s ex:age ?a }`,
	}
	for _, be := range bes {
		for _, up := range updates {
			apply(t, be, up)
		}
	}
	queries := []string{
		`SELECT ?s ?p ?o WHERE { ?s ?p ?o }`,
		`SELECT ?s ?o WHERE { ?s <http://ex/knownBy> ?o }`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }`,
		`SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY ?s`,
	}
	for _, query := range queries {
		q := sparql.MustParse(query)
		var want []string
		for _, name := range []string{"memory", "disk"} {
			be := bes[name]
			for _, engine := range []sparql.Engine{sparql.EngineAuto, sparql.EngineLegacy} {
				res, err := q.ExecEngine(be, engine)
				if err != nil {
					t.Fatalf("%s/%v: %v", name, engine, err)
				}
				got := canonRows(res)
				if want == nil {
					want = got
				} else if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Fatalf("%s/%v diverged on %q:\n got %v\nwant %v", name, engine, query, got, want)
				}
			}
			rs, err := q.Stream(context.Background(), be)
			if err != nil {
				t.Fatal(err)
			}
			res, err := rs.Collect()
			if err != nil {
				t.Fatal(err)
			}
			if got := canonRows(res); fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("%s/stream diverged on %q:\n got %v\nwant %v", name, query, got, want)
			}
		}
	}
}

func canonRows(res *sparql.Result) []string {
	out := make([]string, 0, len(res.Rows))
	for _, b := range res.Rows {
		row := ""
		for _, v := range res.Vars {
			if t, ok := b[v]; ok {
				row += v + "=" + t.String() + "\t"
			}
		}
		out = append(out, row)
	}
	sort.Strings(out)
	return out
}

func TestFeedPublishSubscribeReplay(t *testing.T) {
	f := update.NewFeed()
	for i := 0; i < 3; i++ {
		ev := f.Publish(update.Event{Dataset: "http://ex/ds", Added: i})
		if ev.Seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", ev.Seq, i+1)
		}
	}
	backlog, ch, cancel := f.Subscribe(1)
	defer cancel()
	if len(backlog) != 2 || backlog[0].Seq != 2 || backlog[1].Seq != 3 {
		t.Fatalf("backlog = %+v, want seqs 2,3", backlog)
	}
	f.Publish(update.Event{Dataset: "http://ex/ds", Added: 9})
	ev := <-ch
	if ev.Seq != 4 || ev.Added != 9 {
		t.Fatalf("live event = %+v", ev)
	}
	if f.LastSeq() != 4 {
		t.Fatalf("LastSeq = %d", f.LastSeq())
	}
	cancel()
	if _, ok := <-ch; ok {
		t.Fatal("channel not closed after cancel")
	}
	cancel() // idempotent
}

func TestFeedRingBound(t *testing.T) {
	f := update.NewFeed()
	for i := 0; i < 300; i++ {
		f.Publish(update.Event{})
	}
	backlog, _, cancel := f.Subscribe(0)
	defer cancel()
	if len(backlog) != 256 {
		t.Fatalf("backlog = %d, want 256", len(backlog))
	}
	if backlog[0].Seq != 45 {
		t.Fatalf("oldest retained seq = %d, want 45", backlog[0].Seq)
	}
}
