package update

import (
	"sync"
	"time"

	"repro/internal/schema"
)

// Event is one change-feed entry: the schema.Diff-shaped consequence of
// an applied update, stamped with a per-feed sequence number so
// consumers can resume (?since=) without loss while the event is still
// in the replay ring.
type Event struct {
	// Seq is the feed-wide sequence number, starting at 1.
	Seq uint64 `json:"seq"`
	// Dataset is the endpoint URL the update applied to.
	Dataset string `json:"dataset"`
	// Time is when the update committed.
	Time time.Time `json:"time"`
	// Generation is the dataset's generation after the update; cached
	// snapshots and ETags of earlier generations are stale.
	Generation uint64 `json:"generation"`
	// Added and Removed count the net triple delta.
	Added   int `json:"added"`
	Removed int `json:"removed"`
	// Diff is the schema-level consequence (class/edge/instance deltas),
	// computed from the incrementally-maintained index — not from a
	// re-extraction.
	Diff *schema.Diff `json:"diff,omitempty"`
}

// feedRing is how many events a Feed retains for ?since= replay.
const feedRing = 256

// subBuffer is each subscriber's channel capacity. A subscriber that
// falls further behind than this misses events (its NDJSON stream keeps
// going with the newest ones); the ring exists so a reconnect with
// ?since= can recover the gap.
const subBuffer = 64

// Feed is a fan-out change feed: Publish appends an event to the replay
// ring and offers it to every live subscriber without blocking the
// write path.
type Feed struct {
	mu      sync.Mutex
	ring    []Event // at most feedRing, oldest first
	nextSeq uint64
	subs    map[int]chan Event
	nextSub int
}

// NewFeed returns an empty feed.
func NewFeed() *Feed {
	return &Feed{nextSeq: 1, subs: make(map[int]chan Event)}
}

// Publish stamps the event with the next sequence number and delivers
// it. It never blocks: a subscriber whose buffer is full misses this
// event (recoverable via the replay ring).
func (f *Feed) Publish(ev Event) Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	ev.Seq = f.nextSeq
	f.nextSeq++
	f.ring = append(f.ring, ev)
	if len(f.ring) > feedRing {
		f.ring = f.ring[len(f.ring)-feedRing:]
	}
	for _, ch := range f.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	return ev
}

// LastSeq returns the sequence number of the most recent event, or 0.
func (f *Feed) LastSeq() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nextSeq - 1
}

// Subscribe registers a consumer. Events with Seq > since still in the
// replay ring are returned immediately as backlog; subsequent events
// arrive on the channel. Call the returned cancel function to
// unsubscribe (the channel is then closed).
func (f *Feed) Subscribe(since uint64) (backlog []Event, ch <-chan Event, cancel func()) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ev := range f.ring {
		if ev.Seq > since {
			backlog = append(backlog, ev)
		}
	}
	c := make(chan Event, subBuffer)
	id := f.nextSub
	f.nextSub++
	f.subs[id] = c
	return backlog, c, func() {
		f.mu.Lock()
		defer f.mu.Unlock()
		if _, ok := f.subs[id]; ok {
			delete(f.subs, id)
			close(c)
		}
	}
}
