// Package notify simulates the e-mail notification H-BOLD sends when a
// manually submitted endpoint finishes (or fails) index extraction
// (§3.4, Figure 3). The paper's privacy rule is enforced here: the
// address is used once to deliver the notification and is not retained.
package notify

import (
	"fmt"
	"sync"
	"time"
)

// Message is one delivered notification. Recipient addresses are redacted
// in the retained copy: only the delivery is logged, not the address.
type Message struct {
	// RecipientHint is a redacted form of the address ("f***@example.org").
	RecipientHint string
	Subject       string
	Body          string
	SentAt        time.Time
}

// Outbox collects sent notifications.
type Outbox struct {
	mu   sync.Mutex
	sent []Message
}

// NewOutbox returns an empty outbox.
func NewOutbox() *Outbox { return &Outbox{} }

// Send delivers a notification to the address. Only a redacted hint is
// retained, honouring the paper's "the e-mail address is deleted" rule.
func (o *Outbox) Send(to, subject, body string, at time.Time) error {
	if to == "" {
		return fmt.Errorf("notify: empty recipient")
	}
	o.mu.Lock()
	defer o.mu.Unlock()
	o.sent = append(o.sent, Message{
		RecipientHint: Redact(to),
		Subject:       subject,
		Body:          body,
		SentAt:        at,
	})
	return nil
}

// Sent returns a copy of the delivered messages.
func (o *Outbox) Sent() []Message {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]Message, len(o.sent))
	copy(out, o.sent)
	return out
}

// Len returns the number of delivered messages.
func (o *Outbox) Len() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.sent)
}

// Redact hides the local part of an e-mail address, keeping the first
// character and the domain.
func Redact(addr string) string {
	at := -1
	for i, r := range addr {
		if r == '@' {
			at = i
			break
		}
	}
	if at <= 0 {
		return "***"
	}
	return addr[:1] + "***" + addr[at:]
}

// SuccessBody renders the body of the extraction-success e-mail shown in
// Figure 3.
func SuccessBody(endpointURL string, classes, instances int) string {
	return fmt.Sprintf(
		"The SPARQL endpoint %s has been successfully indexed by H-BOLD.\n"+
			"The extracted Schema Summary exposes %d classes covering %d instances.\n"+
			"The dataset is now listed among the available datasets.",
		endpointURL, classes, instances)
}

// FailureBody renders the body of the extraction-failure e-mail.
func FailureBody(endpointURL string, reason error) string {
	return fmt.Sprintf(
		"The index extraction for the SPARQL endpoint %s did not complete.\n"+
			"Reason: %v\nThe endpoint will be retried automatically.",
		endpointURL, reason)
}
