package notify

import (
	"strings"
	"testing"
	"time"
)

func TestSendAndSent(t *testing.T) {
	o := NewOutbox()
	at := time.Date(2020, 1, 3, 12, 0, 0, 0, time.UTC)
	if err := o.Send("user@example.org", "subj", "body", at); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 1 {
		t.Fatalf("Len = %d", o.Len())
	}
	m := o.Sent()[0]
	if m.Subject != "subj" || m.Body != "body" || !m.SentAt.Equal(at) {
		t.Fatalf("message = %+v", m)
	}
}

func TestSendEmptyRecipient(t *testing.T) {
	o := NewOutbox()
	if err := o.Send("", "s", "b", time.Now()); err == nil {
		t.Fatal("empty recipient must fail")
	}
}

func TestAddressNotRetained(t *testing.T) {
	o := NewOutbox()
	o.Send("federico@example.org", "s", "b", time.Now())
	m := o.Sent()[0]
	if strings.Contains(m.RecipientHint, "federico") {
		t.Fatalf("full address retained: %s", m.RecipientHint)
	}
	if m.RecipientHint != "f***@example.org" {
		t.Fatalf("hint = %s", m.RecipientHint)
	}
}

func TestRedact(t *testing.T) {
	cases := []struct{ in, want string }{
		{"a@b.c", "a***@b.c"},
		{"longname@host.org", "l***@host.org"},
		{"nodomain", "***"},
		{"@x.y", "***"},
	}
	for _, c := range cases {
		if got := Redact(c.in); got != c.want {
			t.Errorf("Redact(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestBodies(t *testing.T) {
	s := SuccessBody("http://x/sparql", 12, 3400)
	if !strings.Contains(s, "http://x/sparql") || !strings.Contains(s, "12 classes") {
		t.Fatalf("success body = %q", s)
	}
	f := FailureBody("http://x/sparql", errFake{})
	if !strings.Contains(f, "did not complete") || !strings.Contains(f, "fake") {
		t.Fatalf("failure body = %q", f)
	}
}

type errFake struct{}

func (errFake) Error() string { return "fake outage" }

func TestSentReturnsCopy(t *testing.T) {
	o := NewOutbox()
	o.Send("a@b.c", "s", "b", time.Now())
	msgs := o.Sent()
	msgs[0].Subject = "mutated"
	if o.Sent()[0].Subject != "s" {
		t.Fatal("Sent must return a copy")
	}
}
