package querybuilder

import (
	"context"
	"strings"
	"testing"

	"repro/internal/endpoint"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/turtle"
)

func bookStore(t testing.TB) *store.Store {
	t.Helper()
	g, err := turtle.Parse(`
@prefix ex: <http://ex/> .
ex:a1 a ex:Author ; ex:name "Rich" ; ex:age 50 ; ex:wrote ex:b1, ex:b2 .
ex:a2 a ex:Author ; ex:name "Ann" ; ex:age 30 ; ex:wrote ex:b3 .
ex:b1 a ex:Book ; ex:title "Go" .
ex:b2 a ex:Book ; ex:title "RDF" .
ex:b3 a ex:Book ; ex:title "SPARQL" .
ex:p1 a ex:Publisher ; ex:published ex:b1 .
`)
	if err != nil {
		t.Fatal(err)
	}
	return store.FromGraph(g)
}

func TestBuildSimpleClassQuery(t *testing.T) {
	q := &Query{Class: "http://ex/Author"}
	text, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "?x a <http://ex/Author>") {
		t.Fatalf("query = %s", text)
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
}

func TestBuildWithAttributes(t *testing.T) {
	q := &Query{
		Class:      "http://ex/Author",
		Attributes: []string{"http://ex/name", "http://ex/age"},
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vars) != 3 { // x, name, age
		t.Fatalf("vars = %v", res.Vars)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestBuildWithPath(t *testing.T) {
	q := &Query{
		Class:      "http://ex/Author",
		Attributes: []string{"http://ex/name"},
		Paths: []Path{{
			Property:    "http://ex/wrote",
			TargetClass: "http://ex/Book",
			Attributes:  []string{"http://ex/title"},
		}},
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 { // 2 + 1 books
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestBuildInversePath(t *testing.T) {
	// from Book, follow ex:wrote backwards to Author
	q := &Query{
		Class: "http://ex/Book",
		Paths: []Path{{Property: "http://ex/wrote", Inverse: true}},
	}
	text, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "?wrote <http://ex/wrote> ?x") {
		t.Fatalf("inverse triple missing: %s", text)
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(res.Rows))
	}
}

func TestBuildOptionalPath(t *testing.T) {
	q := &Query{
		Class: "http://ex/Book",
		Paths: []Path{{
			Property: "http://ex/published", Inverse: true, Optional: true,
		}},
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	// all 3 books, publisher bound only for b1
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	bound := 0
	for _, r := range res.Rows {
		if _, ok := r["published"]; ok {
			bound++
		}
	}
	if bound != 1 {
		t.Fatalf("bound publishers = %d, want 1", bound)
	}
}

func TestBuildFilters(t *testing.T) {
	q := &Query{
		Class:      "http://ex/Author",
		Attributes: []string{"http://ex/age", "http://ex/name"},
		Filters: []Filter{
			{Var: "age", Op: ">", Value: "40", Numeric: true},
		},
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["name"].Value != "Rich" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBuildRegexFilter(t *testing.T) {
	q := &Query{
		Class:      "http://ex/Author",
		Attributes: []string{"http://ex/name"},
		Filters:    []Filter{{Var: "name", Op: "regex", Value: "^A"}},
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0]["name"].Value != "Ann" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBuildCountOnly(t *testing.T) {
	q := &Query{Class: "http://ex/Book", CountOnly: true}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	n, _ := res.Rows[0]["count"].Int()
	if n != 3 {
		t.Fatalf("count = %d", n)
	}
}

func TestBuildDistinctAndLimit(t *testing.T) {
	q := &Query{Class: "http://ex/Author", Distinct: true, Limit: 1}
	text, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "SELECT DISTINCT") || !strings.Contains(text, "LIMIT 1") {
		t.Fatalf("query = %s", text)
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: bookStore(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
}

func TestVariableDeduplication(t *testing.T) {
	// two paths over properties with the same local name must not collide
	q := &Query{
		Class: "http://ex/Author",
		Paths: []Path{
			{Property: "http://ex/wrote"},
			{Property: "http://other/wrote"},
		},
	}
	vars, err := q.Variables()
	if err != nil {
		t.Fatal(err)
	}
	if vars["http://ex/wrote"] == vars["http://other/wrote"] {
		t.Fatalf("variable collision: %v", vars)
	}
	if _, err := q.Build(); err != nil {
		t.Fatal(err)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := (&Query{}).Build(); err == nil {
		t.Fatal("empty query should fail")
	}
	q := &Query{Class: "http://ex/Author", Filters: []Filter{{Var: "x", Op: "~"}}}
	if _, err := q.Build(); err == nil {
		t.Fatal("bad operator should fail")
	}
}

func TestStringFilterEscaping(t *testing.T) {
	q := &Query{
		Class:      "http://ex/Author",
		Attributes: []string{"http://ex/name"},
		Filters:    []Filter{{Var: "name", Op: "=", Value: `Ri"ch`}},
	}
	text, err := q.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `\"`) {
		t.Fatalf("quote not escaped: %s", text)
	}
}

func TestRunOnScholarly(t *testing.T) {
	// the visual query of the paper's demo: Events with their Situations
	st := synth.Scholarly(1)
	q := &Query{
		Class:      synth.ScholarlyNS + "Event",
		Attributes: []string{synth.ScholarlyNS + "label"},
		Paths: []Path{{
			Property:    synth.ScholarlyNS + "hasSituation",
			TargetClass: synth.ScholarlyNS + "Situation",
		}},
		Limit: 50,
	}
	res, err := q.Run(context.Background(), endpoint.LocalClient{Store: st})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 50 {
		t.Fatalf("rows = %d, want 50 (limited)", len(res.Rows))
	}
}
