// Package querybuilder implements H-BOLD's visual querying: the user
// composes a query by clicking a class, its attributes and its
// connections in the Schema Summary view, and the tool automatically
// generates the corresponding SPARQL query [Benedetti, Bergamaschi & Po,
// K-CAP 2015]. The builder emits standard SPARQL text that runs on any
// endpoint (and on this repository's own engine).
package querybuilder

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/endpoint"
	"repro/internal/sparql"
)

// Query is the visual query model.
type Query struct {
	// Class is the focus class IRI (the node the user clicked).
	Class string
	// Attributes are datatype property IRIs of the focus class the user
	// ticked for projection.
	Attributes []string
	// Paths follow object properties to connected classes.
	Paths []Path
	// Filters constrain projected variables.
	Filters []Filter
	// Distinct requests DISTINCT results.
	Distinct bool
	// CountOnly asks only for the number of matching instances.
	CountOnly bool
	// Limit caps the result size (0 = no limit; the UI defaults to 100).
	Limit int
}

// Path is one hop of the visual query: a connection from the focus class
// (or a previous hop) to another class.
type Path struct {
	// Property is the object property IRI to traverse.
	Property string
	// TargetClass optionally constrains the type of the reached node.
	TargetClass string
	// Inverse follows the property backwards (the clicked arc pointed at
	// the focus class).
	Inverse bool
	// Optional makes the hop OPTIONAL.
	Optional bool
	// Attributes are datatype properties of the target to project.
	Attributes []string
}

// Filter is a comparison over a projected variable.
type Filter struct {
	// Var is the variable name as produced by the builder (see VarFor).
	Var string
	// Op is one of = != < > <= >= or "regex".
	Op string
	// Value is the literal to compare with; quoted as a string unless
	// Numeric is set.
	Value   string
	Numeric bool
}

// VarFor returns the variable name the builder assigns to a property's
// value: the IRI's local name, sanitized and deduplicated with a counter
// when needed.
func localVar(iri string, used map[string]int) string {
	name := iri
	for i := len(iri) - 1; i >= 0; i-- {
		if iri[i] == '#' || iri[i] == '/' {
			name = iri[i+1:]
			break
		}
	}
	var sb strings.Builder
	for _, r := range name {
		if (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9') || r == '_' {
			sb.WriteRune(r)
		}
	}
	base := sb.String()
	if base == "" {
		base = "v"
	}
	used[base]++
	if used[base] > 1 {
		return fmt.Sprintf("%s%d", base, used[base])
	}
	return base
}

// Build generates the SPARQL query text. The produced query always
// parses with the engine in internal/sparql; Build verifies that before
// returning.
func (q *Query) Build() (string, error) {
	if q.Class == "" {
		return "", fmt.Errorf("querybuilder: no focus class selected")
	}
	used := map[string]int{"x": 1} // reserve ?x
	var proj []string
	var where []string

	where = append(where, fmt.Sprintf("?x a <%s> .", q.Class))
	proj = append(proj, "?x")

	varFor := map[string]string{}
	for _, attr := range q.Attributes {
		v := localVar(attr, used)
		varFor[attr] = v
		proj = append(proj, "?"+v)
		where = append(where, fmt.Sprintf("?x <%s> ?%s .", attr, v))
	}

	for _, p := range q.Paths {
		tv := localVar(p.Property, used)
		varFor[p.Property] = tv
		var hop []string
		if p.Inverse {
			hop = append(hop, fmt.Sprintf("?%s <%s> ?x .", tv, p.Property))
		} else {
			hop = append(hop, fmt.Sprintf("?x <%s> ?%s .", p.Property, tv))
		}
		if p.TargetClass != "" {
			hop = append(hop, fmt.Sprintf("?%s a <%s> .", tv, p.TargetClass))
		}
		proj = append(proj, "?"+tv)
		for _, attr := range p.Attributes {
			av := localVar(attr, used)
			varFor[p.Property+"|"+attr] = av
			proj = append(proj, "?"+av)
			hop = append(hop, fmt.Sprintf("?%s <%s> ?%s .", tv, attr, av))
		}
		if p.Optional {
			where = append(where, "OPTIONAL { "+strings.Join(hop, " ")+" }")
		} else {
			where = append(where, hop...)
		}
	}

	for _, f := range q.Filters {
		val := f.Value
		if !f.Numeric {
			val = `"` + strings.ReplaceAll(val, `"`, `\"`) + `"`
		}
		switch f.Op {
		case "regex":
			where = append(where, fmt.Sprintf("FILTER regex(?%s, %s)", f.Var, val))
		case "=", "!=", "<", ">", "<=", ">=":
			where = append(where, fmt.Sprintf("FILTER(?%s %s %s)", f.Var, f.Op, val))
		default:
			return "", fmt.Errorf("querybuilder: unsupported filter operator %q", f.Op)
		}
	}

	var sb strings.Builder
	sb.WriteString("SELECT ")
	if q.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if q.CountOnly {
		sb.WriteString("(COUNT(*) AS ?count)")
	} else {
		sb.WriteString(strings.Join(proj, " "))
	}
	sb.WriteString("\nWHERE {\n  ")
	sb.WriteString(strings.Join(where, "\n  "))
	sb.WriteString("\n}")
	if q.Limit > 0 && !q.CountOnly {
		fmt.Fprintf(&sb, "\nLIMIT %d", q.Limit)
	}

	text := sb.String()
	if _, err := sparql.Parse(text); err != nil {
		return "", fmt.Errorf("querybuilder: generated invalid SPARQL: %w", err)
	}
	return text, nil
}

// Variables returns the builder's variable assignment: property IRI (or
// "property|attribute" for hop attributes) → variable name.
func (q *Query) Variables() (map[string]string, error) {
	// rebuild deterministically; Build and Variables must agree
	used := map[string]int{"x": 1}
	out := map[string]string{}
	for _, attr := range q.Attributes {
		out[attr] = localVar(attr, used)
	}
	for _, p := range q.Paths {
		out[p.Property] = localVar(p.Property, used)
		for _, attr := range p.Attributes {
			out[p.Property+"|"+attr] = localVar(attr, used)
		}
	}
	return out, nil
}

// Run builds the query and executes it against the client, materializing
// the result.
func (q *Query) Run(ctx context.Context, c endpoint.Client) (*sparql.Result, error) {
	text, err := q.Build()
	if err != nil {
		return nil, err
	}
	return c.Query(ctx, text)
}

// Stream builds the query and executes it against the client as a row
// stream — what the server's /api/query route serves as NDJSON.
func (q *Query) Stream(ctx context.Context, c endpoint.Client) (*sparql.RowSeq, error) {
	text, err := q.Build()
	if err != nil {
		return nil, err
	}
	return endpoint.Stream(ctx, c, text)
}
