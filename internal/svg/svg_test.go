package svg

import (
	"strings"
	"testing"
)

func TestDocStructure(t *testing.T) {
	d := New(200, 100)
	d.Rect(0, 0, 10, 10, "red", "none")
	d.Circle(50, 50, 5, "blue", "black")
	d.Line(0, 0, 10, 10, "#333", 2)
	d.Text(5, 5, 12, "middle", "#000", "hello")
	d.Path("M 0 0 L 10 10", "none", "green", 1)
	d.Polyline([]float64{0, 0, 5, 5, 10, 0}, "purple", 1)
	d.Comment("note")
	out := d.String()
	for _, want := range []string{
		`<svg xmlns="http://www.w3.org/2000/svg" width="200.00" height="100.00"`,
		"<rect", "<circle", "<line", "<text", "<path", "<polyline",
		"<!-- note -->", "</svg>",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestEscaping(t *testing.T) {
	d := New(10, 10)
	d.Text(0, 0, 10, "start", "#000", `<b>&"x"`)
	out := d.String()
	if strings.Contains(out, `<b>`) {
		t.Fatal("text content not escaped")
	}
	if !strings.Contains(out, "&lt;b&gt;&amp;&quot;x&quot;") {
		t.Fatalf("escaping wrong: %s", out)
	}
}

func TestAttrPairs(t *testing.T) {
	d := New(10, 10)
	d.Rect(0, 0, 1, 1, "red", "none", "data-x", "1", "data-y", "two")
	out := d.String()
	if !strings.Contains(out, `data-x="1"`) || !strings.Contains(out, `data-y="two"`) {
		t.Fatalf("attrs missing: %s", out)
	}
}

func TestCommentSanitized(t *testing.T) {
	d := New(10, 10)
	d.Comment("a--b")
	if strings.Contains(d.String(), "a--b") {
		t.Fatal("double dash must be sanitized inside comments")
	}
}

func TestArcLargeFlag(t *testing.T) {
	d := New(100, 100)
	d.Arc(50, 50, 0, 6.0, 10, 20, "red", "none") // > π → large-arc flag 1
	small := New(100, 100)
	small.Arc(50, 50, 0, 1.0, 10, 20, "red", "none")
	if !strings.Contains(d.String(), " 1 1 ") {
		t.Fatal("large arc flag not set")
	}
	if strings.Contains(small.String(), " 0 1 1 ") && !strings.Contains(small.String(), " 0 0 1 ") {
		t.Fatal("small arc should not set large flag")
	}
}

func TestColorCycles(t *testing.T) {
	if Color(0) != Palette[0] {
		t.Fatal("Color(0) wrong")
	}
	if Color(len(Palette)) != Palette[0] {
		t.Fatal("Color must cycle")
	}
	if Color(-1) != Palette[len(Palette)-1] {
		t.Fatal("negative index must wrap")
	}
}

func TestLighten(t *testing.T) {
	if got := Lighten("#000000", 1); got != "#ffffff" {
		t.Fatalf("Lighten black fully = %s", got)
	}
	if got := Lighten("#ff0000", 0); got != "#ff0000" {
		t.Fatalf("Lighten by 0 = %s", got)
	}
	if got := Lighten("bad", 0.5); got != "bad" {
		t.Fatalf("malformed input should pass through, got %s", got)
	}
	mid := Lighten("#104080", 0.5)
	if mid[0] != '#' || len(mid) != 7 {
		t.Fatalf("Lighten result malformed: %s", mid)
	}
}
