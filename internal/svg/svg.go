// Package svg is a minimal SVG document builder used by the viz package
// to render the H-BOLD visualizations to files — the stand-in for the
// D3/browser rendering of the deployed tool.
package svg

import (
	"fmt"
	"math"
	"strings"
)

// Doc accumulates SVG elements.
type Doc struct {
	w, h float64
	b    strings.Builder
}

// New returns a document with the given pixel size.
func New(w, h float64) *Doc {
	d := &Doc{w: w, h: h}
	return d
}

// esc escapes text content and attribute values.
func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

func f(v float64) string { return fmt.Sprintf("%.2f", v) }

// Rect draws a rectangle.
func (d *Doc) Rect(x, y, w, h float64, fill, stroke string, opts ...string) {
	fmt.Fprintf(&d.b, `<rect x="%s" y="%s" width="%s" height="%s" fill="%s" stroke="%s"%s/>`+"\n",
		f(x), f(y), f(w), f(h), esc(fill), esc(stroke), attrs(opts))
}

// Circle draws a circle.
func (d *Doc) Circle(cx, cy, r float64, fill, stroke string, opts ...string) {
	fmt.Fprintf(&d.b, `<circle cx="%s" cy="%s" r="%s" fill="%s" stroke="%s"%s/>`+"\n",
		f(cx), f(cy), f(r), esc(fill), esc(stroke), attrs(opts))
}

// Line draws a line segment.
func (d *Doc) Line(x1, y1, x2, y2 float64, stroke string, width float64, opts ...string) {
	fmt.Fprintf(&d.b, `<line x1="%s" y1="%s" x2="%s" y2="%s" stroke="%s" stroke-width="%s"%s/>`+"\n",
		f(x1), f(y1), f(x2), f(y2), esc(stroke), f(width), attrs(opts))
}

// Text draws text anchored at (x, y).
func (d *Doc) Text(x, y float64, size float64, anchor, fill, content string, opts ...string) {
	fmt.Fprintf(&d.b, `<text x="%s" y="%s" font-size="%s" text-anchor="%s" fill="%s" font-family="sans-serif"%s>%s</text>`+"\n",
		f(x), f(y), f(size), esc(anchor), esc(fill), attrs(opts), esc(content))
}

// Path draws a raw path.
func (d *Doc) Path(dAttr, fill, stroke string, width float64, opts ...string) {
	fmt.Fprintf(&d.b, `<path d="%s" fill="%s" stroke="%s" stroke-width="%s"%s/>`+"\n",
		esc(dAttr), esc(fill), esc(stroke), f(width), attrs(opts))
}

// Polyline draws a polyline through the points (flat x,y pairs).
func (d *Doc) Polyline(pts []float64, stroke string, width float64, opts ...string) {
	var sb strings.Builder
	for i := 0; i+1 < len(pts); i += 2 {
		if i > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(f(pts[i]))
		sb.WriteByte(',')
		sb.WriteString(f(pts[i+1]))
	}
	fmt.Fprintf(&d.b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="%s"%s/>`+"\n",
		sb.String(), esc(stroke), f(width), attrs(opts))
}

// Arc draws an annular sector (sunburst slice) centered at (cx, cy),
// from angle a0 to a1 (radians, 12 o'clock, clockwise), radii r0 < r1.
func (d *Doc) Arc(cx, cy, a0, a1, r0, r1 float64, fill, stroke string, opts ...string) {
	sin, cos := sincos(a0)
	x0o, y0o := cx+r1*sin, cy-r1*cos
	sin, cos = sincos(a1)
	x1o, y1o := cx+r1*sin, cy-r1*cos
	x1i, y1i := cx+r0*sin, cy-r0*cos
	sin, cos = sincos(a0)
	x0i, y0i := cx+r0*sin, cy-r0*cos
	large := 0
	if a1-a0 > 3.14159265 {
		large = 1
	}
	path := fmt.Sprintf("M %s %s A %s %s 0 %d 1 %s %s L %s %s A %s %s 0 %d 0 %s %s Z",
		f(x0o), f(y0o), f(r1), f(r1), large, f(x1o), f(y1o),
		f(x1i), f(y1i), f(r0), f(r0), large, f(x0i), f(y0i))
	d.Path(path, fill, stroke, 1, opts...)
}

func sincos(a float64) (float64, float64) {
	return math.Sin(a), math.Cos(a)
}

// Comment inserts an XML comment (useful for debugging output).
func (d *Doc) Comment(text string) {
	fmt.Fprintf(&d.b, "<!-- %s -->\n", strings.ReplaceAll(text, "--", "- -"))
}

// String renders the complete SVG document.
func (d *Doc) String() string {
	return fmt.Sprintf(`<svg xmlns="http://www.w3.org/2000/svg" width="%s" height="%s" viewBox="0 0 %s %s">`+"\n",
		f(d.w), f(d.h), f(d.w), f(d.h)) + d.b.String() + "</svg>\n"
}

func attrs(opts []string) string {
	if len(opts) == 0 {
		return ""
	}
	var sb strings.Builder
	for i := 0; i+1 < len(opts); i += 2 {
		fmt.Fprintf(&sb, ` %s="%s"`, opts[i], esc(opts[i+1]))
	}
	return sb.String()
}

// Palette is the categorical color scale used across the visualizations
// (a d3.schemeCategory10-like palette).
var Palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd",
	"#8c564b", "#e377c2", "#7f7f7f", "#bcbd22", "#17becf",
}

// Color returns a palette color for an index (cycling).
func Color(i int) string { return Palette[((i%len(Palette))+len(Palette))%len(Palette)] }

// Lighten approximates a lighter shade of a #rrggbb color by mixing with
// white.
func Lighten(hex string, amount float64) string {
	if len(hex) != 7 || hex[0] != '#' || amount < 0 {
		return hex
	}
	parse := func(s string) int {
		v := 0
		for _, c := range s {
			v <<= 4
			switch {
			case c >= '0' && c <= '9':
				v |= int(c - '0')
			case c >= 'a' && c <= 'f':
				v |= int(c-'a') + 10
			case c >= 'A' && c <= 'F':
				v |= int(c-'A') + 10
			}
		}
		return v
	}
	r, g, b := parse(hex[1:3]), parse(hex[3:5]), parse(hex[5:7])
	mix := func(v int) int {
		nv := v + int(float64(255-v)*amount)
		if nv > 255 {
			nv = 255
		}
		return nv
	}
	return fmt.Sprintf("#%02x%02x%02x", mix(r), mix(g), mix(b))
}
