// Package crawler implements §3.3's automatic insertion of SPARQL
// endpoints: it runs the paper's Listing 1 query against each open data
// portal, extracts the advertised endpoint URLs, deduplicates them
// against the registry, and registers the new ones.
package crawler

import (
	"context"
	"fmt"
	"time"

	"repro/internal/endpoint"
	"repro/internal/portal"
	"repro/internal/registry"
)

// PortalReport summarizes one portal crawl.
type PortalReport struct {
	// Portal is the portal name.
	Portal string
	// Discovered is the number of SPARQL endpoints the Listing 1 query
	// returned.
	Discovered int
	// AlreadyListed is how many of those were already in the registry.
	AlreadyListed int
	// Added is how many new endpoints were registered.
	Added int
}

// Report summarizes a full crawl across all portals.
type Report struct {
	Portals []PortalReport
	// ListedBefore / ListedAfter are the registry sizes around the crawl.
	ListedBefore, ListedAfter int
}

// TotalDiscovered sums discoveries over portals.
func (r *Report) TotalDiscovered() int {
	n := 0
	for _, p := range r.Portals {
		n += p.Discovered
	}
	return n
}

// TotalAdded sums newly added endpoints over portals.
func (r *Report) TotalAdded() int {
	n := 0
	for _, p := range r.Portals {
		n += p.Added
	}
	return n
}

// Crawl runs the Listing 1 query against every portal and merges the
// results into the registry. Each portal's catalog is consumed as a row
// stream, so canceling ctx aborts a crawl mid-catalog.
func Crawl(ctx context.Context, portals []*portal.Portal, reg *registry.Registry, now time.Time) (*Report, error) {
	rep := &Report{ListedBefore: reg.Len()}
	for _, p := range portals {
		pr := PortalReport{Portal: p.Name}
		rs, err := endpoint.Stream(ctx, p.Client(), portal.Listing1)
		if err != nil {
			return nil, fmt.Errorf("crawler: portal %s: %w", p.Name, err)
		}
		// collect the catalog first, merge only after the stream ended
		// cleanly: a portal that dies mid-catalog (canceled context,
		// broken stream) must contribute zero entries, like a failed
		// materialized query always did
		type candidate struct{ url, title string }
		var found []candidate
		seen := map[string]bool{}
		for row := range rs.All() {
			url := row["url"].Value
			if url == "" || seen[url] {
				continue
			}
			seen[url] = true
			found = append(found, candidate{url: url, title: row["title"].Value})
		}
		err = rs.Err()
		rs.Close()
		if err != nil {
			return nil, fmt.Errorf("crawler: portal %s: %w", p.Name, err)
		}
		for _, c := range found {
			pr.Discovered++
			if reg.Has(c.url) {
				pr.AlreadyListed++
				continue
			}
			reg.Add(registry.Entry{
				URL: c.url, Title: c.title,
				Source: registry.SourcePortal, Portal: p.Name,
				AddedAt: now,
			})
			pr.Added++
		}
		rep.Portals = append(rep.Portals, pr)
	}
	rep.ListedAfter = reg.Len()
	return rep, nil
}
