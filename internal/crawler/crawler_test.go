package crawler

import (
	"context"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/synth"
)

// seedRegistry loads the 610 pre-existing endpoints, as H-BOLD's old
// DataHub list did.
func seedRegistry(corpus []synth.EndpointDesc) *registry.Registry {
	reg := registry.New(registry.DefaultPolicy)
	for _, d := range corpus {
		if d.PreExisting {
			reg.Add(registry.Entry{
				URL: d.URL, Title: d.Title,
				Source: registry.SourceDataHub, AddedAt: clock.Epoch,
			})
		}
	}
	return reg
}

func TestCrawlReproducesPaperCounts(t *testing.T) {
	corpus := synth.Corpus(1)
	portals := portal.BuildAll(corpus)
	reg := seedRegistry(corpus)

	if reg.Len() != synth.PreExistingEndpoints {
		t.Fatalf("pre-crawl registry = %d, want %d", reg.Len(), synth.PreExistingEndpoints)
	}

	rep, err := Crawl(context.Background(), portals, reg, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}

	// §3.3: 65 + 9 + 15 discovered
	byPortal := map[string]PortalReport{}
	for _, pr := range rep.Portals {
		byPortal[pr.Portal] = pr
	}
	if got := byPortal[synth.PortalEDP].Discovered; got != 65 {
		t.Errorf("EDP discovered = %d, want 65", got)
	}
	if got := byPortal[synth.PortalEUODP].Discovered; got != 9 {
		t.Errorf("EUODP discovered = %d, want 9", got)
	}
	if got := byPortal[synth.PortalIODS].Discovered; got != 15 {
		t.Errorf("IODS discovered = %d, want 15", got)
	}
	// +70 new, 610 → 680
	if rep.TotalAdded() != 70 {
		t.Errorf("added = %d, want 70", rep.TotalAdded())
	}
	if rep.ListedBefore != 610 || rep.ListedAfter != 680 {
		t.Errorf("listed %d → %d, want 610 → 680", rep.ListedBefore, rep.ListedAfter)
	}
	if reg.Len() != synth.TotalEndpoints {
		t.Errorf("registry = %d, want %d", reg.Len(), synth.TotalEndpoints)
	}
}

func TestCrawlIdempotent(t *testing.T) {
	corpus := synth.Corpus(2)
	portals := portal.BuildAll(corpus)
	reg := seedRegistry(corpus)
	if _, err := Crawl(context.Background(), portals, reg, clock.Epoch); err != nil {
		t.Fatal(err)
	}
	rep2, err := Crawl(context.Background(), portals, reg, clock.Epoch.Add(24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if rep2.TotalAdded() != 0 {
		t.Fatalf("second crawl added %d, want 0", rep2.TotalAdded())
	}
	if reg.Len() != synth.TotalEndpoints {
		t.Fatalf("registry grew to %d", reg.Len())
	}
}

func TestCrawlProvenanceRecorded(t *testing.T) {
	corpus := synth.Corpus(3)
	portals := portal.BuildAll(corpus)
	reg := seedRegistry(corpus)
	Crawl(context.Background(), portals, reg, clock.Epoch)
	found := false
	for _, e := range reg.Entries() {
		if e.Source == registry.SourcePortal {
			found = true
			if e.Portal == "" {
				t.Fatal("portal entry missing portal name")
			}
			if e.Title == "" {
				t.Fatal("portal entry missing title from dc:title")
			}
		}
	}
	if !found {
		t.Fatal("no portal-sourced entries")
	}
}

func TestListing1FiltersNonSparql(t *testing.T) {
	corpus := synth.Corpus(4)
	portals := portal.BuildAll(corpus)
	// the portals contain noise datasets with CSV downloads; Listing 1's
	// regex must exclude them, so discovered == SparqlDatasets
	for _, p := range portals {
		res, err := p.Client().Query(context.Background(), portal.Listing1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != p.SparqlDatasets {
			t.Fatalf("portal %s: %d rows, want %d", p.Name, len(res.Rows), p.SparqlDatasets)
		}
		for _, row := range res.Rows {
			if u := row["url"].Value; !contains(u, "sparql") {
				t.Fatalf("non-sparql URL leaked: %s", u)
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
