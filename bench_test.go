package repro

// One benchmark per paper artifact (figures and quantitative claims; the
// short paper has no numbered tables). The experiment ids E1–E13 are
// defined in DESIGN.md §3 and reported in EXPERIMENTS.md. Ablation
// benchmarks cover the design choices DESIGN.md calls out.

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/faultinject"
	"repro/internal/federation"
	"repro/internal/obs"
	"repro/internal/portal"
	"repro/internal/rdf"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/snapcache"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/synth"
	"repro/internal/viz"
)

// --- shared fixtures (built once) ---

var (
	scholarlyOnce sync.Once
	scholarlyTool *core.HBOLD
	scholarlyURL  = "http://scholarly.example.org/sparql"
)

func scholarlyFixture(b *testing.B) *core.HBOLD {
	scholarlyOnce.Do(func() {
		tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
		tool.Registry.Add(registry.Entry{URL: scholarlyURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
		tool.Connect(scholarlyURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
		if err := tool.Process(scholarlyURL); err != nil {
			panic(err)
		}
		scholarlyTool = tool
	})
	return scholarlyTool
}

var (
	corpusOnce  sync.Once
	corpusTool  *core.HBOLD
	corpusURLs  []string
	corpusDescs []synth.EndpointDesc
)

// corpusFixture indexes a slice of the corpus's indexable endpoints
// (enough for stable medians while keeping setup time modest).
func corpusFixture(b *testing.B, n int) (*core.HBOLD, []string) {
	corpusOnce.Do(func() {
		corpusDescs = synth.Corpus(1)
		tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
		count := 0
		for _, d := range corpusDescs {
			if !d.Indexable || d.Dead || d.OutageProb > 0 {
				continue
			}
			if count >= 40 {
				break
			}
			tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub, AddedAt: clock.Epoch})
			tool.Connect(d.URL, endpoint.LocalClient{Store: synth.BuildStore(d)})
			if err := tool.Process(d.URL); err != nil {
				panic(err)
			}
			corpusURLs = append(corpusURLs, d.URL)
			count++
		}
		corpusTool = tool
	})
	if n > len(corpusURLs) {
		n = len(corpusURLs)
	}
	return corpusTool, corpusURLs[:n]
}

// --- E1: Figure 2 exploration walkthrough ---

func BenchmarkE1_ExplorationWalkthrough(b *testing.B) {
	tool := scholarlyFixture(b)
	event := synth.ScholarlyNS + "Event"
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex, err := tool.Explore(scholarlyURL, event)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ex.Expand(event); err != nil {
			b.Fatal(err)
		}
		ex.ExpandAll()
		if !ex.Complete() {
			b.Fatal("walkthrough incomplete")
		}
	}
}

// --- E2: §3.2 precomputed vs on-the-fly Cluster Schema display ---

func BenchmarkE2_OnTheFly(b *testing.B) {
	tool, urls := corpusFixture(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tool.ClusterSchemaOnTheFly(urls[i%len(urls)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2_Precomputed(b *testing.B) {
	tool, urls := corpusFixture(b, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tool.ClusterSchema(urls[i%len(urls)]); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E3: §3.3 portal crawl ---

func BenchmarkE3_PortalCrawl(b *testing.B) {
	corpus := synth.Corpus(1)
	portals := portal.BuildAll(corpus)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reg := registry.New(registry.DefaultPolicy)
		for _, d := range corpus {
			if d.PreExisting {
				reg.Add(registry.Entry{URL: d.URL, Source: registry.SourceDataHub})
			}
		}
		rep, err := crawler.Crawl(context.Background(), portals, reg, clock.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		if rep.TotalAdded() != 70 || rep.ListedAfter != 680 {
			b.Fatalf("crawl counts wrong: +%d → %d", rep.TotalAdded(), rep.ListedAfter)
		}
	}
}

// --- E4–E7: the §3.5 visualization layouts (Figures 4–7) ---

func benchView(b *testing.B, render func(cs *cluster.Schema, s *schema.Summary) string) {
	tool := scholarlyFixture(b)
	s, err := tool.Summary(scholarlyURL)
	if err != nil {
		b.Fatal(err)
	}
	cs, err := tool.ClusterSchema(scholarlyURL)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := render(cs, s); len(out) < 100 {
			b.Fatal("empty render")
		}
	}
}

func BenchmarkE4_Treemap(b *testing.B) {
	benchView(b, func(cs *cluster.Schema, s *schema.Summary) string {
		return viz.TreemapView(cs, s, 1000, 700)
	})
}

func BenchmarkE5_Sunburst(b *testing.B) {
	benchView(b, func(cs *cluster.Schema, s *schema.Summary) string {
		return viz.SunburstView(cs, s, 800)
	})
}

func BenchmarkE6_CirclePack(b *testing.B) {
	benchView(b, func(cs *cluster.Schema, s *schema.Summary) string {
		return viz.CirclePackView(cs, s, 800)
	})
}

func BenchmarkE7_EdgeBundling(b *testing.B) {
	benchView(b, func(cs *cluster.Schema, s *schema.Summary) string {
		return viz.BundleView(cs, s, synth.ScholarlyNS+"Event", 900)
	})
}

// --- E8: §5 "tested on 130 Big LD" full pipeline ---

func BenchmarkE8_FullPipeline(b *testing.B) {
	descs := synth.Corpus(1)
	var indexable []synth.EndpointDesc
	for _, d := range descs {
		if d.Indexable && !d.Dead && d.OutageProb == 0 {
			indexable = append(indexable, d)
		}
	}
	// pre-build stores so the bench times the pipeline, not generation
	stores := make([]*store.Store, 0, 12)
	for i := 0; i < 12 && i < len(indexable); i++ {
		stores = append(stores, synth.BuildStore(indexable[i]))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := indexable[i%len(stores)]
		st := stores[i%len(stores)]
		tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
		tool.Registry.Add(registry.Entry{URL: d.URL, AddedAt: clock.Epoch})
		tool.Connect(d.URL, endpoint.LocalClient{Store: st})
		if err := tool.Process(d.URL); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E9: §3.1 update scheduler over a simulated 60 days ---

func BenchmarkE9_UpdateScheduler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ck := clock.NewSim(clock.Epoch)
		reg := registry.New(registry.DefaultPolicy)
		avail := make([]*endpoint.Availability, 200)
		for j := range avail {
			reg.Add(registry.Entry{URL: fmt.Sprintf("http://e%d/sparql", j), AddedAt: clock.Epoch})
			avail[j] = endpoint.NewAvailability(int64(j), 0.15)
		}
		for day := 0; day < 60; day++ {
			for _, url := range reg.Due(ck.Now()) {
				var idx int
				fmt.Sscanf(url, "http://e%d/sparql", &idx)
				if avail[idx].UpOn(day) {
					reg.RecordSuccess(url, ck.Now())
				} else {
					reg.RecordFailure(url, ck.Now())
				}
			}
			ck.AdvanceDays(1)
		}
		if reg.IndexedCount() < 190 {
			b.Fatalf("scheduler left %d endpoints unindexed", 200-reg.IndexedCount())
		}
	}
}

// --- E10: §3.4 manual insertion with notification ---

func BenchmarkE10_ManualInsertion(b *testing.B) {
	st := synth.Generate(synth.Spec{Name: "manual", Classes: 6, Instances: 200, ObjectProps: 8, DataProps: 6, LinkFactor: 1, Seed: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
		url := "http://manual.example.org/sparql"
		if err := tool.SubmitEndpoint(url, "Manual LD", "user@example.org"); err != nil {
			b.Fatal(err)
		}
		tool.Connect(url, endpoint.LocalClient{Store: st})
		if ok, _ := tool.RunDue(); ok != 1 {
			b.Fatal("manual endpoint not processed")
		}
		if tool.Outbox.Len() != 1 {
			b.Fatal("notification not sent")
		}
		tool.Close()
	}
}

// --- E12: sequential vs concurrent RunDue over the sched worker pool ---

// latencyClient adds a real (slept) per-query delay on top of a local
// client, standing in for the network round-trip to a public endpoint.
// The Remote cost model is accounted rather than slept, so without this
// the benchmark would only measure the CPU-bound regime; extraction
// against live endpoints is latency-bound, which is exactly where the
// worker pool pays off.
type latencyClient struct {
	c     endpoint.Client
	delay time.Duration
}

func (l latencyClient) Query(ctx context.Context, q string) (*sparql.Result, error) {
	time.Sleep(l.delay)
	return l.c.Query(ctx, q)
}

const e12Endpoints = 12

var (
	e12Once   sync.Once
	e12Stores []*store.Store
)

func e12Tool(b *testing.B, workers int) (*core.HBOLD, *clock.Sim) {
	e12Once.Do(func() {
		for i := 0; i < e12Endpoints; i++ {
			e12Stores = append(e12Stores, synth.Generate(synth.Spec{
				Name: fmt.Sprintf("e12-%d", i), Classes: 6, Instances: 150,
				ObjectProps: 8, DataProps: 4, LinkFactor: 1, Seed: int64(100 + i),
			}))
		}
	})
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	tool.SchedulerConfig = sched.Config{Workers: workers}
	for i, st := range e12Stores {
		url := fmt.Sprintf("http://e12-%d.example.org/sparql", i)
		tool.Registry.Add(registry.Entry{URL: url, AddedAt: clock.Epoch})
		tool.Connect(url, latencyClient{c: endpoint.LocalClient{Store: st}, delay: 2 * time.Millisecond})
	}
	return tool, ck
}

func benchRunDue(b *testing.B, workers int) {
	tool, ck := e12Tool(b, workers)
	defer tool.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, failed := tool.RunDueConcurrent(context.Background())
		if ok != e12Endpoints || failed != 0 {
			b.Fatalf("run = %d ok, %d failed", ok, failed)
		}
		// the weekly §3.1 refresh makes every endpoint due again
		ck.AdvanceDays(8)
	}
}

func BenchmarkE12_RunDueSequential(b *testing.B) { benchRunDue(b, 1) }

func BenchmarkE12_RunDueConcurrent(b *testing.B) { benchRunDue(b, 8) }

// --- E13: versioned snapshot cache on the presentation read path ---

// e13Readers is the concurrency the acceptance criterion names: the
// cached read path must be ≥10× faster than the uncached one at 32
// concurrent readers.
const e13Readers = 32

// e13Server builds a one-dataset presentation server whose snapshot
// cache has the given byte budget (0 = caching disabled, the pre-cache
// read path that deserialized the docstore JSON and recomputed layout
// geometry on every request).
func e13Server(b *testing.B, budget int64) (*server.Server, *core.HBOLD) {
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	tool.Cache = snapcache.New(budget)
	tool.Registry.Add(registry.Entry{URL: scholarlyURL, Title: "Scholarly LD", Source: registry.SourceDataHub, AddedAt: clock.Epoch})
	tool.Connect(scholarlyURL, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(scholarlyURL); err != nil {
		b.Fatal(err)
	}
	return server.New(tool), tool
}

// e13Paths is the read mix: JSON summaries and cluster schemas, one
// layout model, and three rendered SVG views.
func e13Paths() []string {
	ds := url.QueryEscape(scholarlyURL)
	return []string{
		"/api/summary?dataset=" + ds,
		"/api/cluster?dataset=" + ds,
		"/api/model/treemap?dataset=" + ds,
		"/view/treemap?dataset=" + ds,
		"/view/sunburst?dataset=" + ds,
		"/view/circlepack?dataset=" + ds,
	}
}

func benchE13Reads(b *testing.B, budget int64) {
	h, _ := e13Server(b, budget)
	paths := e13Paths()
	// warm: populates the cache when one is enabled
	for _, p := range paths {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("%s -> %d", p, rec.Code)
		}
	}
	procs := runtime.GOMAXPROCS(0)
	b.SetParallelism((e13Readers + procs - 1) / procs)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := paths[i%len(paths)]
			i++
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", p, nil))
			if rec.Code != http.StatusOK {
				b.Errorf("%s -> %d", p, rec.Code)
				return
			}
		}
	})
}

func BenchmarkE13_Uncached32(b *testing.B)  { benchE13Reads(b, 0) }
func BenchmarkE13_CachedHot32(b *testing.B) { benchE13Reads(b, core.DefaultCacheBudget) }

// BenchmarkE13_CachedPostRefresh times the first read after a refresh:
// every iteration re-extracts the dataset (untimed), bumping the
// generation and invalidating the cache, so the timed read always pays
// the full miss (decode, layout, render, cache fill).
func BenchmarkE13_CachedPostRefresh(b *testing.B) {
	h, tool := e13Server(b, core.DefaultCacheBudget)
	path := "/view/treemap?dataset=" + url.QueryEscape(scholarlyURL)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := tool.Process(scholarlyURL); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkE13_Revalidate304 times an If-None-Match revalidation of an
// unchanged dataset: the server answers 304 from the generation counter
// alone, recomputing nothing.
func BenchmarkE13_Revalidate304(b *testing.B) {
	h, _ := e13Server(b, core.DefaultCacheBudget)
	path := "/view/treemap?dataset=" + url.QueryEscape(scholarlyURL)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
	etag := rec.Header().Get("ETag")
	if rec.Code != http.StatusOK || etag == "" {
		b.Fatalf("warm status=%d etag=%q", rec.Code, etag)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest("GET", path, nil)
		req.Header.Set("If-None-Match", etag)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// --- E11: Listing 1 verbatim ---

func BenchmarkE11_Listing1Query(b *testing.B) {
	portals := portal.BuildAll(synth.Corpus(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := portals[i%len(portals)]
		res, err := p.Client().Query(context.Background(), portal.Listing1)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) != p.SparqlDatasets {
			b.Fatalf("rows = %d, want %d", len(res.Rows), p.SparqlDatasets)
		}
	}
}

// --- Ablations ---

var (
	ablSummaryOnce sync.Once
	ablSummary     *schema.Summary
)

func ablationSummary(b *testing.B) *schema.Summary {
	ablSummaryOnce.Do(func() {
		st := synth.Generate(synth.Spec{
			Name: "abl", Classes: 40, Instances: 4000, ObjectProps: 80,
			DataProps: 30, LinkFactor: 1, CommunitySeeds: 5, Seed: 17,
		})
		ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "abl", clock.Epoch)
		if err != nil {
			panic(err)
		}
		ablSummary = schema.Build(ix)
	})
	return ablSummary
}

func benchCommunity(b *testing.B, alg cluster.Algorithm) {
	s := ablationSummary(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := cluster.Build(s, cluster.Options{Algorithm: alg, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		if cs.NumClusters() == 0 {
			b.Fatal("no clusters")
		}
	}
}

func BenchmarkAblation_CommunityLouvain(b *testing.B) {
	benchCommunity(b, cluster.Louvain)
}

func BenchmarkAblation_CommunityLabelPropagation(b *testing.B) {
	benchCommunity(b, cluster.LabelPropagation)
}

func BenchmarkAblation_CommunityGirvanNewman(b *testing.B) {
	benchCommunity(b, cluster.GirvanNewman)
}

var (
	ablStoreOnce sync.Once
	ablStore     *store.Store
)

func ablationStore(b *testing.B) *store.Store {
	ablStoreOnce.Do(func() {
		ablStore = synth.Generate(synth.Spec{
			Name: "ablx", Classes: 10, Instances: 2000, ObjectProps: 15,
			DataProps: 10, LinkFactor: 1, Seed: 23,
		})
	})
	return ablStore
}

func BenchmarkAblation_ExtractionAggregate(b *testing.B) {
	st := ablationStore(b)
	c := endpoint.LocalClient{Store: st}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := extraction.New().Extract(context.Background(), c, "x", clock.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		if ix.Strategy != "aggregate" {
			b.Fatal("expected aggregate strategy")
		}
	}
}

func BenchmarkAblation_ExtractionMixed(b *testing.B) {
	st := ablationStore(b)
	r := endpoint.NewRemote("nogroup", "x", st, endpoint.ProfileNoGroupBy, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := extraction.New().Extract(context.Background(), r, "x", clock.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		if ix.Strategy != "mixed" {
			b.Fatal("expected mixed strategy")
		}
	}
}

func BenchmarkAblation_ExtractionEnumerate(b *testing.B) {
	st := ablationStore(b)
	r := endpoint.NewRemote("noagg", "x", st, endpoint.ProfileNoAgg, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := extraction.New().Extract(context.Background(), r, "x", clock.Epoch)
		if err != nil {
			b.Fatal(err)
		}
		if ix.Strategy != "enumerate" {
			b.Fatal("expected enumerate strategy")
		}
	}
}

func BenchmarkAblation_StoreIndexedLookup(b *testing.B) {
	st := ablationStore(b)
	typeT := store.Pattern{P: rdf.NewIRI(rdf.RDFType)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if st.Count(typeT) == 0 {
			b.Fatal("no matches")
		}
	}
}

func BenchmarkAblation_StoreFullScanFilter(b *testing.B) {
	st := ablationStore(b)
	want := rdf.NewIRI(rdf.RDFType)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		st.Match(store.Pattern{}, func(t rdf.Triple) bool {
			if t.P == want {
				n++
			}
			return true
		})
		if n == 0 {
			b.Fatal("no matches")
		}
	}
}

// --- E14: ID-space query engine vs the legacy term-space evaluator ---

// The evaluator is the innermost loop of every synthetic endpoint, so E1,
// E2, E8 and E12 all inherit this speedup; E14 isolates it on three query
// mixes. "{C}" in a query is replaced by the store's biggest class.

var (
	e14Once   sync.Once
	e14St     *store.Store
	e14Class  string
	e14Class2 string
)

func e14Store(b *testing.B) (*store.Store, string, string) {
	e14Once.Do(func() {
		e14St = synth.Generate(synth.Spec{
			Name: "e14", Classes: 12, Instances: 2500, ObjectProps: 24,
			DataProps: 8, LinkFactor: 2, CommunitySeeds: 3, Seed: 99,
		})
		cls := e14St.Classes()
		e14Class = cls[0].Class.Value
		e14Class2 = cls[1].Class.Value
	})
	return e14St, e14Class, e14Class2
}

var e14Mixes = []struct {
	name    string
	queries []string
}{
	{"bgp", []string{
		`SELECT ?x ?y WHERE { ?x a <{C}> . ?x ?p ?y . ?y a <{C2}> }`,
		`SELECT ?x WHERE { ?x ?p ?y . ?y ?q ?z . ?z a <{C}> . ?x a <{C2}> }`,
		`SELECT ?x ?y WHERE { ?x ?p ?y . ?y ?q ?x }`,
	}},
	{"distinct", []string{
		`SELECT DISTINCT ?c WHERE { ?s a ?c }`,
		`SELECT DISTINCT ?p WHERE { ?s ?p ?o }`,
		`SELECT DISTINCT ?x ?c WHERE { ?x a ?c . ?x ?p ?o }`,
	}},
	{"aggregate", []string{
		`SELECT ?c (COUNT(?s) AS ?n) WHERE { ?s a ?c } GROUP BY ?c ORDER BY DESC(?n)`,
		`SELECT (COUNT(*) AS ?n) WHERE { ?s ?p ?o }`,
		`SELECT ?p (COUNT(?o) AS ?n) WHERE { ?s ?p ?o } GROUP BY ?p`,
	}},
}

func benchE14(b *testing.B, queries []string, engine sparql.Engine) {
	st, class, class2 := e14Store(b)
	parsed := make([]*sparql.Query, len(queries))
	for i, q := range queries {
		q = strings.ReplaceAll(q, "{C2}", class2)
		parsed[i] = sparql.MustParse(strings.ReplaceAll(q, "{C}", class))
	}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		res, err := parsed[i%len(parsed)].ExecEngine(st, engine)
		if err != nil {
			b.Fatal(err)
		}
		rows += len(res.Rows)
	}
	if b.N >= len(queries) && rows == 0 {
		b.Fatal("benchmark queries produced no rows")
	}
}

func BenchmarkE14_QueryEngine(b *testing.B) {
	for _, mix := range e14Mixes {
		mix := mix
		b.Run(mix.name+"/idspace", func(b *testing.B) { benchE14(b, mix.queries, sparql.EngineIDSpace) })
		b.Run(mix.name+"/legacy", func(b *testing.B) { benchE14(b, mix.queries, sparql.EngineLegacy) })
	}
}

// --- E15: streaming vs materialized query consumption over the wire ---

// E15 measures what the context-aware streaming API buys the
// enumeration-strategy extraction workload: rows are decoded token-wise
// off the HTTP response and folded into aggregation state one at a time,
// so client-side live memory stays O(row) however large the result,
// first-row latency is decoupled from last-row latency, and a canceled
// context stops the transfer within one row. The materialized path reads
// the entire results document into memory before the caller sees row one
// — live memory O(result).

var (
	e15Once sync.Once
	e15St   *store.Store
)

const e15Query = `SELECT ?s ?p ?o WHERE { ?s ?p ?o }`

func e15Store() *store.Store {
	e15Once.Do(func() {
		e15St = synth.Generate(synth.Spec{
			Name: "e15", Classes: 10, Instances: 6000, ObjectProps: 16,
			DataProps: 8, LinkFactor: 2, CommunitySeeds: 3, Seed: 77,
		})
	})
	return e15St
}

// liveHeapKB reports live heap after a full collection, so the two E15
// paths are compared on resident rows, not allocation churn. The pause
// first lets the in-process protocol server stall on TCP backpressure —
// otherwise its per-row garbage, allocated concurrently with the
// measurement, reads as live memory it does not actually retain.
func liveHeapKB() float64 {
	time.Sleep(50 * time.Millisecond)
	runtime.GC()
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapAlloc) / 1024
}

func BenchmarkE15_StreamEnumeration(b *testing.B) {
	srv := endpoint.Serve(e15Store(), nil)
	defer srv.Close()
	c := endpoint.NewHTTPClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Query(ctx, `ASK { ?s ?p ?o }`); err != nil { // warm the transport
		b.Fatal(err)
	}
	base := liveHeapKB() // the store itself is resident either way
	b.ReportAllocs()
	b.ResetTimer()
	var firstRowNs, liveKB float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rs, err := c.Stream(ctx, e15Query)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for range rs.All() {
			if rows == 0 {
				firstRowNs += float64(time.Since(start).Nanoseconds())
			}
			rows++
			if rows == 5000 {
				// mid-transfer live heap: only the row in flight is resident
				b.StopTimer()
				if kb := liveHeapKB(); kb > liveKB {
					liveKB = kb
				}
				b.StartTimer()
			}
		}
		if rs.Err() != nil {
			b.Fatal(rs.Err())
		}
		if rows < 10000 {
			b.Fatalf("only %d rows; store too small for the comparison", rows)
		}
	}
	b.ReportMetric(firstRowNs/float64(b.N), "ns/first-row")
	b.ReportMetric(liveKB-base, "live-KB-over-base")
}

func BenchmarkE15_MaterializedEnumeration(b *testing.B) {
	srv := endpoint.Serve(e15Store(), nil)
	defer srv.Close()
	c := endpoint.NewHTTPClient(srv.URL)
	ctx := context.Background()
	if _, err := c.Query(ctx, `ASK { ?s ?p ?o }`); err != nil { // warm the transport
		b.Fatal(err)
	}
	base := liveHeapKB()
	b.ReportAllocs()
	b.ResetTimer()
	var firstRowNs, liveKB float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		res, err := c.Query(ctx, e15Query)
		if err != nil {
			b.Fatal(err)
		}
		// the first row is only visible once the whole document arrived
		firstRowNs += float64(time.Since(start).Nanoseconds())
		b.StopTimer()
		if kb := liveHeapKB(); kb > liveKB {
			liveKB = kb // the full result set is resident here
		}
		b.StartTimer()
		if len(res.Rows) < 10000 {
			b.Fatalf("only %d rows; store too small for the comparison", len(res.Rows))
		}
		runtime.KeepAlive(res)
	}
	b.ReportMetric(firstRowNs/float64(b.N), "ns/first-row")
	b.ReportMetric(liveKB-base, "live-KB-over-base")
}

// BenchmarkE15_CancelLatency measures how fast a mid-stream cancel
// returns control: the acceptance bar is "within one row boundary".
func BenchmarkE15_CancelLatency(b *testing.B) {
	srv := endpoint.Serve(e15Store(), nil)
	defer srv.Close()
	c := endpoint.NewHTTPClient(srv.URL)
	b.ReportAllocs()
	b.ResetTimer()
	var cancelNs float64
	for i := 0; i < b.N; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		rs, err := c.Stream(ctx, e15Query)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		var start time.Time
		for range rs.All() {
			rows++
			if rows == 100 {
				start = time.Now()
				cancel()
			}
		}
		cancelNs += float64(time.Since(start).Nanoseconds())
		if rows > 101 {
			b.Fatalf("stream produced %d rows after cancel at 100", rows-100)
		}
		if !errors.Is(rs.Err(), context.Canceled) {
			b.Fatalf("stream err = %v", rs.Err())
		}
		rs.Close()
		cancel()
	}
	b.ReportMetric(cancelNs/float64(b.N), "ns/cancel-to-return")
}

// --- E16: federated fan-out vs a sequential same-query loop ---

// E16 measures what the federation layer buys over querying N endpoints
// one after the other. Four protocol servers each hold a quarter of the
// corpus behind a simulated WAN delay (e16Latency per request — public
// endpoints answer in tens-to-hundreds of ms before the first byte).
// The sequential loop streams and drains each endpoint in turn, so its
// wall time stacks the four latencies plus the four evaluations; the
// federated fan-out opens all four concurrently, so the latencies
// overlap and — on multicore hardware — the evaluations do too (this
// box has 1 CPU, making the measured speedup pure latency-hiding, the
// floor of what real hardware sees). ns/first-row on the federated path
// is the merge's first-row latency: one WAN delay plus one row, not a
// full drain.

var (
	e16Once    sync.Once
	e16Servers []*httptest.Server
	e16Rows    int
)

const (
	e16Query   = `SELECT ?s ?c WHERE { ?s a ?c }`
	e16Latency = 60 * time.Millisecond
)

// e16Endpoints serves four partitions of the E15 corpus as SPARQL
// protocol servers with a per-request WAN delay (started once; they live
// for the whole bench binary, like the E13/E15 fixtures).
func e16Endpoints() ([]*httptest.Server, int) {
	e16Once.Do(func() {
		parts := synth.Partition(e15Store(), 4)
		for _, p := range parts {
			e16Rows += p.Count(store.Pattern{P: rdf.NewIRI(rdf.RDFType)})
			h := &endpoint.Handler{Store: p}
			e16Servers = append(e16Servers, httptest.NewServer(http.HandlerFunc(
				func(w http.ResponseWriter, r *http.Request) {
					time.Sleep(e16Latency) // connection + time-to-first-byte of a public endpoint
					h.ServeHTTP(w, r)
				})))
		}
	})
	return e16Servers, e16Rows
}

func e16Sources(servers []*httptest.Server) []*endpoint.Source {
	out := make([]*endpoint.Source, len(servers))
	for i, srv := range servers {
		out[i] = endpoint.NewSource(fmt.Sprintf("part%d", i), srv.URL, endpoint.NewHTTPClient(srv.URL))
	}
	return out
}

func BenchmarkE16_FederatedFanout(b *testing.B) {
	servers, total := e16Endpoints()
	fed := federation.New(e16Sources(servers)...)
	ctx := context.Background()
	if _, err := fed.Query(ctx, `ASK { ?s ?p ?o }`); err != nil { // warm transports
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var firstRowNs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rs, err := fed.Stream(ctx, e16Query)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for range rs.All() {
			if rows == 0 {
				firstRowNs += float64(time.Since(start).Nanoseconds())
			}
			rows++
		}
		if rs.Err() != nil {
			b.Fatal(rs.Err())
		}
		if rows != total {
			b.Fatalf("merged %d rows, partitions hold %d", rows, total)
		}
	}
	b.ReportMetric(firstRowNs/float64(b.N), "ns/first-row")
}

func BenchmarkE16_SequentialLoop(b *testing.B) {
	servers, total := e16Endpoints()
	clients := make([]*endpoint.HTTPClient, len(servers))
	ctx := context.Background()
	for i, srv := range servers {
		clients[i] = endpoint.NewHTTPClient(srv.URL)
		if _, err := clients[i].Query(ctx, `ASK { ?s ?p ?o }`); err != nil { // warm transports
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var firstRowNs float64
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rows := 0
		for _, c := range clients {
			rs, err := c.Stream(ctx, e16Query)
			if err != nil {
				b.Fatal(err)
			}
			for range rs.All() {
				if rows == 0 {
					firstRowNs += float64(time.Since(start).Nanoseconds())
				}
				rows++
			}
			if rs.Err() != nil {
				b.Fatal(rs.Err())
			}
		}
		if rows != total {
			b.Fatalf("drained %d rows, partitions hold %d", rows, total)
		}
	}
	b.ReportMetric(firstRowNs/float64(b.N), "ns/first-row")
}

// BenchmarkE16_FirstRowCancel: open the federated stream, take one row,
// close — the cost of "peek at a federation", which is what a UI's
// first-page fetch over ?sources=all&limit=N does.
func BenchmarkE16_FirstRowCancel(b *testing.B) {
	servers, _ := e16Endpoints()
	fed := federation.New(e16Sources(servers)...)
	ctx := context.Background()
	if _, err := fed.Query(ctx, `ASK { ?s ?p ?o }`); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs, err := fed.Stream(ctx, e16Query)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := rs.Next(); !ok {
			b.Fatal("no first row")
		}
		rs.Close()
	}
}

// --- E17: observability overhead on the hot query path ---

// The unified observability layer is opt-in via the context: without a
// registry or trace attached, the engine's hooks reduce to two nil
// checks per query, and EXPLAIN's per-node hooks to one pointer check
// per plan-node invocation. E17 quantifies both arms on the E14 BGP mix
// over the streaming path — the instrumented arm pays one closure call
// per row pulled plus a handful of atomic updates at stream end. The
// acceptance gate holds the instrumented arm within 5% of the
// uninstrumented one.

func benchE17(b *testing.B, ctx context.Context) {
	st, class, class2 := e14Store(b)
	queries := e14Mixes[0].queries
	parsed := make([]*sparql.Query, len(queries))
	for i, q := range queries {
		q = strings.ReplaceAll(q, "{C2}", class2)
		parsed[i] = sparql.MustParse(strings.ReplaceAll(q, "{C}", class))
	}
	b.ReportAllocs()
	b.ResetTimer()
	rows := 0
	for i := 0; i < b.N; i++ {
		rs, err := parsed[i%len(parsed)].Stream(ctx, st)
		if err != nil {
			b.Fatal(err)
		}
		for range rs.All() {
			rows++
		}
		if err := rs.Err(); err != nil {
			b.Fatal(err)
		}
	}
	if b.N >= len(parsed) && rows == 0 {
		b.Fatal("benchmark queries produced no rows")
	}
}

func BenchmarkE17_Observability(b *testing.B) {
	b.Run("off", func(b *testing.B) { benchE17(b, context.Background()) })
	b.Run("metrics", func(b *testing.B) {
		benchE17(b, obs.WithRegistry(context.Background(), obs.NewRegistry()))
	})
	b.Run("metrics_trace", func(b *testing.B) {
		ctx := obs.WithRegistry(context.Background(), obs.NewRegistry())
		benchE17(b, obs.WithTrace(ctx, obs.NewTrace(nil)))
	})
}

// --- E18: bounded top-k ORDER BY … LIMIT under the streaming engine ---

// E18 measures what the top-k heap buys an ordered window query: `ORDER
// BY … LIMIT 10` over a pattern with >100k solutions retains only
// OFFSET+LIMIT rows however many the pattern produces. The baseline arm
// is the strategy this replaced — materialize every solution, sort the
// lot, emit the window — which both engines used for any ordered query
// and the streaming path still uses when no LIMIT bounds the window.
// live-KB-over-base follows E15: live heap after a forced collection
// minus a pre-query baseline, sampled while the comparison structure is
// resident (the heap at first emitted row; the full sorted result).

var (
	e18Once sync.Once
	e18St   *store.Store
)

const e18K = 10

func e18Store() *store.Store {
	e18Once.Do(func() {
		e18St = synth.Generate(synth.Spec{
			Name: "e18", Classes: 10, Instances: 24000, ObjectProps: 16,
			DataProps: 8, LinkFactor: 3, CommunitySeeds: 3, Seed: 88,
		})
	})
	return e18St
}

func BenchmarkE18_TopKStream(b *testing.B) {
	st := e18Store()
	if st.Len() < 100000 {
		b.Fatalf("store holds %d triples; E18 requires >=100k solutions", st.Len())
	}
	q, err := sparql.Parse(fmt.Sprintf(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s ?p LIMIT %d`, e18K))
	if err != nil {
		b.Fatal(err)
	}
	reg := obs.NewRegistry()
	ctx := obs.WithRegistry(context.Background(), reg)
	base := liveHeapKB()
	b.ReportAllocs()
	b.ResetTimer()
	var liveKB float64
	for i := 0; i < b.N; i++ {
		rs, err := q.Stream(ctx, st)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for range rs.All() {
			if rows == 0 {
				// the scan is done and the heap holds exactly the k
				// retained rows: this is the operator's peak residency
				b.StopTimer()
				if kb := liveHeapKB(); kb > liveKB {
					liveKB = kb
				}
				b.StartTimer()
			}
			rows++
		}
		if rs.Err() != nil {
			b.Fatal(rs.Err())
		}
		if rows != e18K {
			b.Fatalf("top-k emitted %d rows, want %d", rows, e18K)
		}
	}
	b.StopTimer()
	// the heap must have consumed every solution, not sampled some
	scanned := reg.CounterVec("hbold_stream_op_rows_total", "Rows consumed by streaming operators.", "op").With("top-k").Value()
	if scanned < float64(b.N)*100000 {
		b.Fatalf("top-k scanned %.0f rows over %d runs; want >=100k per run", scanned, b.N)
	}
	b.ReportMetric(liveKB-base, "live-KB-over-base")
	b.ReportMetric(scanned/float64(b.N), "rows-scanned/op")
	b.ReportMetric(float64(e18K), "heap-rows")
}

// BenchmarkE18_FullSortMaterialized is the pre-top-k strategy on the
// same request: materialize and sort all solutions, then window. The
// unwindowed ordered result is what the old fallback held at its peak
// to answer the identical LIMIT-10 query.
func BenchmarkE18_FullSortMaterialized(b *testing.B) {
	st := e18Store()
	q, err := sparql.Parse(`SELECT ?s ?p ?o WHERE { ?s ?p ?o } ORDER BY ?o ?s ?p`)
	if err != nil {
		b.Fatal(err)
	}
	base := liveHeapKB()
	b.ReportAllocs()
	b.ResetTimer()
	var liveKB float64
	for i := 0; i < b.N; i++ {
		res, err := q.ExecEngine(st, sparql.EngineIDSpace)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if kb := liveHeapKB(); kb > liveKB {
			liveKB = kb // the full sorted solution set is resident here
		}
		b.StartTimer()
		if len(res.Rows) < 100000 {
			b.Fatalf("only %d rows; store too small for the comparison", len(res.Rows))
		}
		window := res.Rows[:e18K]
		runtime.KeepAlive(window)
	}
	b.StopTimer()
	b.ReportMetric(liveKB-base, "live-KB-over-base")
}

// --- E19: hedged stream opens under injected tail latency ---

// E19 measures what hedged opens buy against a member whose responses
// occasionally draw a long tail (public endpoints stall on cold caches,
// GC pauses, or transient congestion). One protocol server answers with
// a 2 ms base latency and an 80 ms tail on 8% of requests, on a seeded
// deterministic schedule (internal/faultinject). The unhedged arm eats
// every tail in full; the hedged arm opens a second attempt after 10 ms
// and takes whichever delivers a first row first, so a tailed open is
// rescued for the price of one extra request on ~8% of opens. The
// reported percentiles are time-to-first-row over the run's samples:
// the p99 win is the experiment's acceptance gate (a rescued tail costs
// ~hedge-delay + base instead of ~tail + base), while p50 shows the
// healthy path pays nothing.

var (
	e19Once   sync.Once
	e19Server *httptest.Server
)

const (
	e19Query      = `SELECT ?s ?c WHERE { ?s a ?c }`
	e19Base       = 2 * time.Millisecond
	e19Tail       = 80 * time.Millisecond
	e19TailProb   = 0.08
	e19HedgeAfter = 10 * time.Millisecond
)

// e19Endpoint serves the scholarly corpus behind seeded tail latency
// (started once, shared by both arms — the injector's draw sequence
// advances across them but the distribution is identical).
func e19Endpoint() *httptest.Server {
	e19Once.Do(func() {
		inj := faultinject.New(faultinject.Config{
			Seed:     19,
			Latency:  e19Base,
			Tail:     e19Tail,
			TailProb: e19TailProb,
		})
		e19Server = httptest.NewServer(inj.Middleware(&endpoint.Handler{Store: synth.Scholarly(1)}))
	})
	return e19Server
}

func benchE19(b *testing.B, hedge bool) {
	srv := e19Endpoint()
	src := endpoint.NewSource("tail-member", srv.URL, endpoint.NewHTTPClient(srv.URL))
	fed := federation.New(src)
	fed.Hedge = hedge
	fed.HedgeAfter = e19HedgeAfter
	ctx := context.Background()
	if _, err := fed.Query(ctx, `ASK { ?s ?p ?o }`); err != nil { // warm transports
		b.Fatal(err)
	}
	samples := make([]time.Duration, 0, b.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		rs, err := fed.Stream(ctx, e19Query)
		if err != nil {
			b.Fatal(err)
		}
		if _, ok := rs.Next(); !ok {
			b.Fatal("no first row")
		}
		samples = append(samples, time.Since(start))
		rs.Close()
	}
	b.StopTimer()
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(samples)))
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return float64(samples[idx].Nanoseconds())
	}
	b.ReportMetric(pct(0.50), "p50-ns/first-row")
	b.ReportMetric(pct(0.95), "p95-ns/first-row")
	b.ReportMetric(pct(0.99), "p99-ns/first-row")
}

func BenchmarkE19_HedgedFirstRow(b *testing.B)   { benchE19(b, true) }
func BenchmarkE19_UnhedgedFirstRow(b *testing.B) { benchE19(b, false) }

// --- E20: instant restart — disk cold-open vs in-memory rebuild ---

// E20 measures the property the persistent tier exists for: how long a
// restarted process takes before it can answer queries. The disk arms
// open a populated data directory — paying O(segment indexes + WAL
// tail), not O(corpus) — at two segment counts (a compacted store and
// one with compaction disabled), so the scaling with segment count is
// visible. The rebuild arm re-inserts the same triples into a fresh
// in-memory store, a strict lower bound on re-extraction, which also
// pays the query battery over the wire.

var (
	e20Once    sync.Once
	e20Triples []rdf.Triple
	e20DirFew  string
	e20DirMany string
)

func e20Fixture(b *testing.B) {
	e20Once.Do(func() {
		src := synth.Scholarly(1)
		src.Match(store.Pattern{}, func(tr rdf.Triple) bool {
			e20Triples = append(e20Triples, tr)
			return true
		})
		build := func(opts disk.Options) string {
			dir, err := os.MkdirTemp("", "hbold-e20-*")
			if err != nil {
				panic(err)
			}
			ds, err := disk.Open(dir, opts)
			if err != nil {
				panic(err)
			}
			for i, tr := range e20Triples {
				if _, err := ds.Insert(tr); err != nil {
					panic(err)
				}
				if i%2048 == 2047 {
					if err := ds.Flush(); err != nil {
						panic(err)
					}
				}
			}
			if err := ds.Close(); err != nil {
				panic(err)
			}
			return dir
		}
		// Same memtable budget in both arms — so the WAL tails match and
		// the open-time difference is the segment count alone.
		few := disk.Options{}
		few.KV.NoSync = true
		few.KV.MemtableBytes = 32 << 10
		few.KV.MaxSegments = 2 // compact aggressively
		e20DirFew = build(few)
		many := disk.Options{}
		many.KV.NoSync = true
		many.KV.MemtableBytes = 32 << 10
		many.KV.MaxSegments = 1 << 30 // never compact
		e20DirMany = build(many)
	})
}

func benchE20ColdOpen(b *testing.B, dir string) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ds, err := disk.Open(dir, disk.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// prove the reopened store is serving, not just open
		if n := ds.Cardinality(store.Pattern{}); n != len(e20Triples) {
			b.Fatalf("cold-open store has %d triples, want %d", n, len(e20Triples))
		}
		if err := ds.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ds, err := disk.Open(dir, disk.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(ds.KVStats().Segments), "segments")
	ds.Close()
}

func BenchmarkE20_DiskColdOpenCompacted(b *testing.B) {
	e20Fixture(b)
	benchE20ColdOpen(b, e20DirFew)
}

func BenchmarkE20_DiskColdOpenManySegments(b *testing.B) {
	e20Fixture(b)
	benchE20ColdOpen(b, e20DirMany)
}

func BenchmarkE20_RebuildInMemory(b *testing.B) {
	e20Fixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := store.New()
		for _, tr := range e20Triples {
			st.Add(tr)
		}
		if st.Len() != len(e20Triples) {
			b.Fatalf("rebuild has %d triples, want %d", st.Len(), len(e20Triples))
		}
	}
}

// --- E21: live mutation — incremental index maintenance vs re-extraction ---

// E21 measures what the update subsystem's incremental maintenance
// buys: after a small mutation, extraction.ApplyDelta repairs the
// extracted index by visiting only the delta's affected subjects, while
// the alternative re-extracts the whole corpus. Each incremental
// iteration applies a 12-triple update (a new instance with properties
// and links) and then its exact inverse, returning store and index to
// the baseline — so one iteration prices two maintained updates in
// steady state. The re-extraction arm prices the same repair done from
// scratch. Two corpus sizes expose the cost curve: incremental
// maintenance is O(delta), re-extraction O(corpus).

// e21Store builds a corpus of n subjects spread over five classes, each
// with a type, two data properties and a link — shaped like the synth
// corpora but scalable.
func e21Store(n int) *store.Store {
	st := store.New()
	typ := rdf.NewIRI(rdf.RDFType)
	for i := 0; i < n; i++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e21/s/%d", i))
		st.Add(rdf.Triple{S: s, P: typ, O: rdf.NewIRI(fmt.Sprintf("http://e21/C%d", i%5))})
		st.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://e21/name"), O: rdf.NewLiteral(fmt.Sprintf("n%d", i))})
		st.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://e21/rank"), O: rdf.NewLiteral(fmt.Sprintf("%d", i%7))})
		st.Add(rdf.Triple{S: s, P: rdf.NewIRI("http://e21/next"), O: rdf.NewIRI(fmt.Sprintf("http://e21/s/%d", (i+1)%n))})
	}
	return st
}

// e21Delta is the 12-triple update: one new instance of every class plus
// a property and a link each.
func e21Delta(n int) []rdf.Triple {
	var out []rdf.Triple
	typ := rdf.NewIRI(rdf.RDFType)
	for c := 0; c < 4; c++ {
		s := rdf.NewIRI(fmt.Sprintf("http://e21/new/%d", c))
		out = append(out,
			rdf.Triple{S: s, P: typ, O: rdf.NewIRI(fmt.Sprintf("http://e21/C%d", c))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://e21/name"), O: rdf.NewLiteral(fmt.Sprintf("new%d", c))},
			rdf.Triple{S: s, P: rdf.NewIRI("http://e21/next"), O: rdf.NewIRI(fmt.Sprintf("http://e21/s/%d", c%n))})
	}
	return out
}

func benchE21Incremental(b *testing.B, n int) {
	st := e21Store(n)
	now := clock.Epoch
	ix, err := extraction.New().Extract(context.Background(), endpoint.LocalClient{Store: st}, "http://e21/sparql", now)
	if err != nil {
		b.Fatal(err)
	}
	baseline := ix.Triples
	delta := e21Delta(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, tr := range delta {
			st.Add(tr)
		}
		extraction.ApplyDelta(ix, st, delta, nil, now)
		for _, tr := range delta {
			st.Remove(tr)
		}
		extraction.ApplyDelta(ix, st, nil, delta, now)
	}
	b.StopTimer()
	if ix.Triples != baseline {
		b.Fatalf("index drifted: %d triples, want %d", ix.Triples, baseline)
	}
	b.ReportMetric(float64(st.Len()), "corpus-triples")
}

func benchE21Reextract(b *testing.B, n int) {
	st := e21Store(n)
	for _, tr := range e21Delta(n) {
		st.Add(tr)
	}
	c := endpoint.LocalClient{Store: st}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := extraction.New().Extract(context.Background(), c, "http://e21/sparql", clock.Epoch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(st.Len()), "corpus-triples")
}

func BenchmarkE21_IncrementalDelta5k(b *testing.B)  { benchE21Incremental(b, 1250) }
func BenchmarkE21_IncrementalDelta50k(b *testing.B) { benchE21Incremental(b, 12500) }
func BenchmarkE21_Reextraction5k(b *testing.B)      { benchE21Reextract(b, 1250) }
func BenchmarkE21_Reextraction50k(b *testing.B)     { benchE21Reextract(b, 12500) }
