// Command hbold-bench regenerates every figure and quantitative claim of
// the paper and prints paper-vs-measured rows. Experiment ids (E1–E11)
// are defined in DESIGN.md; the output of this harness is the source of
// EXPERIMENTS.md.
//
// Usage:
//
//	hbold-bench [-out outdir] [-e E2,E3]   run all (or selected) experiments
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/synth"
	"repro/internal/viz"
)

var (
	outDir = flag.String("out", "bench-out", "directory for rendered SVGs")
	only   = flag.String("e", "", "comma-separated experiment ids to run (default all)")
)

func main() {
	log.SetFlags(0)
	flag.Parse()
	selected := map[string]bool{}
	for _, id := range strings.Split(*only, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			selected[id] = true
		}
	}
	run := func(id string) bool { return len(selected) == 0 || selected[id] }

	fmt.Println("H-BOLD reproduction harness — paper vs measured")
	fmt.Println(strings.Repeat("=", 64))

	if run("E1") {
		e1()
	}
	if run("E2") {
		e2()
	}
	if run("E3") {
		e3()
	}
	if run("E4") || run("E5") || run("E6") || run("E7") {
		e4to7(run)
	}
	if run("E8") {
		e8()
	}
	if run("E9") {
		e9()
	}
	if run("E10") {
		e10()
	}
	if run("E11") {
		e11()
	}
}

func header(id, paper string) {
	fmt.Printf("\n%s — paper: %s\n%s\n", id, paper, strings.Repeat("-", 64))
}

// scholarlyTool builds the Scholarly fixture pipeline.
func scholarlyTool() (*core.HBOLD, string) {
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	url := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD", AddedAt: clock.Epoch})
	tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(url); err != nil {
		log.Fatal(err)
	}
	return tool, url
}

func e1() {
	header("E1", "Figure 2 — stepwise exploration of the Scholarly LD with node-count and instance-% feedback")
	tool, url := scholarlyTool()
	cs, _ := tool.ClusterSchema(url)
	s, _ := tool.Summary(url)
	fmt.Printf("step 1  Cluster Schema: %d clusters over %d classes\n", cs.NumClusters(), s.NumClasses())
	event := synth.ScholarlyNS + "Event"
	ex, err := tool.Explore(url, event)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2  focus on Event:      %2d nodes, %5.1f%% of instances\n", ex.NodeCount(), ex.Coverage())
	ex.Expand(event)
	fmt.Printf("step 3  expand Event:        %2d nodes, %5.1f%% of instances\n", ex.NodeCount(), ex.Coverage())
	ex.ExpandAll()
	fmt.Printf("step 4  full Schema Summary: %2d nodes, %5.1f%% of instances (complete=%v)\n",
		ex.NodeCount(), ex.Coverage(), ex.Complete())
}

func e2() {
	header("E2", "§3.2 — precomputing the Cluster Schema cuts display time by ~35% on half the endpoints")
	descs := synth.Corpus(1)
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	var urls []string
	for _, d := range descs {
		if !d.Indexable || d.Dead || d.OutageProb > 0 {
			continue
		}
		tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, AddedAt: clock.Epoch})
		tool.Connect(d.URL, endpoint.LocalClient{Store: synth.BuildStore(d)})
		if err := tool.Process(d.URL); err != nil {
			log.Fatal(err)
		}
		urls = append(urls, d.URL)
		if len(urls) == 60 {
			break
		}
	}
	var reductions []float64
	for _, u := range urls {
		// warm both paths once
		tool.ClusterSchemaOnTheFly(u)
		tool.ClusterSchema(u)
		const reps = 5
		t0 := time.Now()
		for i := 0; i < reps; i++ {
			if _, err := tool.ClusterSchemaOnTheFly(u); err != nil {
				log.Fatal(err)
			}
		}
		fly := time.Since(t0)
		t0 = time.Now()
		for i := 0; i < reps; i++ {
			if _, err := tool.ClusterSchema(u); err != nil {
				log.Fatal(err)
			}
		}
		pre := time.Since(t0)
		reductions = append(reductions, 100*(1-float64(pre)/float64(fly)))
	}
	sort.Float64s(reductions)
	median := reductions[len(reductions)/2]
	atLeast35 := 0
	for _, r := range reductions {
		if r >= 35 {
			atLeast35++
		}
	}
	fmt.Printf("datasets measured:                      %d\n", len(reductions))
	fmt.Printf("median display-time reduction:          %.0f%%  (paper: 35%% on half the endpoints)\n", median)
	fmt.Printf("endpoints with ≥35%% reduction:          %d/%d (%.0f%%)\n",
		atLeast35, len(reductions), 100*float64(atLeast35)/float64(len(reductions)))
}

func e3() {
	header("E3", "§3.3 — portal crawl: 65+9+15 discovered, +70 new, list 610→680")
	corpus := synth.Corpus(1)
	portals := portal.BuildAll(corpus)
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	for _, d := range corpus {
		if d.PreExisting {
			tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub, AddedAt: clock.Epoch})
		}
	}
	before := tool.Registry.Len()
	rep, err := tool.CrawlPortals(context.Background(), portals)
	if err != nil {
		log.Fatal(err)
	}
	paper := map[string]int{synth.PortalEDP: 65, synth.PortalEUODP: 9, synth.PortalIODS: 15}
	for _, pr := range rep.Portals {
		fmt.Printf("%-24s discovered %2d (paper %2d), new %2d\n", pr.Portal, pr.Discovered, paper[pr.Portal], pr.Added)
	}
	fmt.Printf("listed: %d → %d (paper 610 → 680), +%d new (paper +70)\n",
		before, rep.ListedAfter, rep.TotalAdded())
}

func e4to7(run func(string) bool) {
	tool, url := scholarlyTool()
	s, _ := tool.Summary(url)
	cs, _ := tool.ClusterSchema(url)
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*outDir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("rendered %-18s %6d bytes, %4d elements\n", path, len(content), strings.Count(content, "<"))
	}
	if run("E4") {
		header("E4", "Figure 4 — treemap of the Cluster Schema (area ∝ instances)")
		write("treemap.svg", viz.TreemapView(cs, s, 1000, 700))
	}
	if run("E5") {
		header("E5", "Figure 5 — sunburst (inner ring clusters, outer ring classes)")
		write("sunburst.svg", viz.SunburstView(cs, s, 800))
	}
	if run("E6") {
		header("E6", "Figure 6 — circle packing (classes ⊂ clusters ⊂ dataset)")
		write("circlepack.svg", viz.CirclePackView(cs, s, 800))
	}
	if run("E7") {
		header("E7", "Figure 7 — hierarchical edge bundling, focus Event (ranges green, domains red)")
		write("bundle.svg", viz.BundleView(cs, s, synth.ScholarlyNS+"Event", 900))
	}
}

func e8() {
	header("E8", "§5 — H-BOLD tested on 130 Big LD showing good performances")
	descs := synth.Corpus(1)
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	defer tool.Close()
	// this row records the sequential pipeline baseline; the worker
	// pool's speedup is E12's claim, not E8's
	tool.SchedulerConfig = sched.Config{Workers: 1}
	for i, d := range descs {
		tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, AddedAt: clock.Epoch})
		tool.Connect(d.URL, synth.BuildRemote(d, ck, int64(i)))
	}
	t0 := time.Now()
	// run the daily job until the indexable population stabilizes (flaky
	// endpoints need §3.1 retry days); 6 days stays inside one refresh
	// cycle so every endpoint is extracted exactly once
	var okTotal int
	for day := 0; day < 6; day++ {
		ok, _ := tool.RunDue()
		okTotal += ok
		ck.AdvanceDays(1)
	}
	elapsed := time.Since(t0)
	fmt.Printf("endpoints listed:   %d (paper 680)\n", tool.Registry.Len())
	fmt.Printf("endpoints indexed:  %d (paper 130)\n", tool.Registry.IndexedCount())
	fmt.Printf("pipeline wall time: %v for %d extraction+summary+cluster runs\n", elapsed.Round(time.Millisecond), okTotal)
}

func e9() {
	header("E9", "§3.1 — weekly refresh + daily retry keeps indexes fresh through 1–2-day outages")
	corpus := synth.Corpus(1)
	ck := clock.NewSim(clock.Epoch)
	reg := registry.New(registry.DefaultPolicy)
	avail := map[string]*endpoint.Availability{}
	for i, d := range corpus {
		if !d.Indexable {
			continue
		}
		reg.Add(registry.Entry{URL: d.URL, AddedAt: clock.Epoch})
		if d.Dead {
			avail[d.URL] = endpoint.AlwaysDown()
		} else {
			avail[d.URL] = endpoint.NewAvailability(int64(i), d.OutageProb)
		}
	}
	days := 60
	attempts, failures := 0, 0
	staleDaysSum, staleSamples := 0, 0
	for day := 0; day < days; day++ {
		for _, url := range reg.Due(ck.Now()) {
			attempts++
			if avail[url].UpOn(day) {
				reg.RecordSuccess(url, ck.Now())
			} else {
				reg.RecordFailure(url, ck.Now())
				failures++
			}
		}
		// sample staleness of the index population
		for _, e := range reg.Entries() {
			if e.Indexed {
				staleDaysSum += int(ck.Now().Sub(e.LastSuccess).Hours() / 24)
				staleSamples++
			}
		}
		ck.AdvanceDays(1)
	}
	fmt.Printf("endpoints simulated:      %d over %d days\n", reg.Len(), days)
	fmt.Printf("extraction attempts:      %d (%.1f/endpoint/week)\n", attempts,
		float64(attempts)/float64(reg.Len())/float64(days)*7)
	fmt.Printf("attempts hitting outages: %d (%.0f%%) — retried next day per §3.1\n",
		failures, 100*float64(failures)/float64(attempts))
	fmt.Printf("mean index age:           %.1f days (policy target < 7)\n",
		float64(staleDaysSum)/float64(staleSamples))
	fmt.Printf("endpoints indexed at end: %d\n", reg.IndexedCount())
}

func e10() {
	header("E10", "Figure 3 / §3.4 — manual insertion with e-mail notification, address deleted after send")
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	defer tool.Close()
	url := "http://user-submitted.example.org/sparql"
	if err := tool.SubmitEndpoint(url, "User LD", "submitter@example.org"); err != nil {
		log.Fatal(err)
	}
	tool.Connect(url, endpoint.LocalClient{Store: synth.Generate(synth.Spec{
		Name: "user", Classes: 12, Instances: 800, ObjectProps: 20, DataProps: 10, LinkFactor: 1, Seed: 5})})
	ok, failed := tool.RunDue()
	fmt.Printf("submission processed: ok=%d failed=%d\n", ok, failed)
	for _, m := range tool.Outbox.Sent() {
		fmt.Printf("notification to %s: %q\n", m.RecipientHint, m.Subject)
	}
	e, _ := tool.Registry.Get(url)
	fmt.Printf("address retained after notification: %v (paper: deleted)\n", e.PendingEmail != "")
	listed := false
	for _, d := range tool.Datasets() {
		if d.URL == url {
			listed = true
		}
	}
	fmt.Printf("dataset listed among the others: %v\n", listed)
}

func e11() {
	header("E11", "Listing 1 — the DCAT extraction query, run verbatim against each portal")
	portals := portal.BuildAll(synth.Corpus(1))
	for _, p := range portals {
		res, err := p.Client().Query(context.Background(), portal.Listing1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s %2d sparql distributions (catalog advertises %d)\n",
			p.Name, len(res.Rows), p.SparqlDatasets)
	}
}
