// Command hbold is the H-BOLD command line: it can serve the
// presentation layer over a demo corpus, run index extraction on a
// Turtle file, render the §3.5 visualizations to SVG files, simulate the
// §3.3 portal crawl, and list indexed datasets.
//
// Usage:
//
//	hbold serve [-addr :8080] [-datasets N]
//	hbold extract <file.ttl>
//	hbold render <file.ttl> <outdir>
//	hbold crawl
//	hbold query <file.ttl> <sparql-query>
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/sparql"
	"repro/internal/store"
	"repro/internal/synth"
	"repro/internal/turtle"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "extract":
		cmdExtract(os.Args[2:])
	case "render":
		cmdRender(os.Args[2:])
	case "crawl":
		cmdCrawl()
	case "query":
		cmdQuery(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hbold serve [-addr :8080] [-datasets N]   start the presentation layer over a demo corpus
  hbold extract <file.ttl>                  run index extraction on a Turtle file
  hbold render <file.ttl> <outdir>          render all visualizations of a Turtle file to SVG
  hbold crawl                               simulate the §3.3 open-data-portal crawl
  hbold query <file.ttl> <sparql>           run a SPARQL query over a Turtle file`)
	os.Exit(2)
}

func loadTurtle(path string) *store.Store {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	g, err := turtle.Parse(string(data))
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	return store.FromGraph(g)
}

// pipeline runs extract → summary → cluster over a local store.
func pipeline(name string, st *store.Store) (*schema.Summary, *cluster.Schema) {
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	tool.Registry.Add(registry.Entry{URL: name, Title: name, AddedAt: clock.Epoch})
	tool.Connect(name, endpoint.LocalClient{Store: st})
	if err := tool.Process(name); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	s, _ := tool.Summary(name)
	cs, _ := tool.ClusterSchema(name)
	return s, cs
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("datasets", 5, "number of demo datasets to index (plus the Scholarly LD)")
	fs.Parse(args)

	tool := core.New(docstore.MustOpenMem(), clock.Real{})
	surl := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: surl, Title: "Scholarly LD"})
	tool.Connect(surl, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(surl); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	count := 0
	for _, d := range synth.Corpus(1) {
		if count >= *n {
			break
		}
		if !d.Indexable || d.Dead || d.OutageProb > 0 {
			continue
		}
		tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title})
		tool.Connect(d.URL, endpoint.LocalClient{Store: synth.BuildStore(d)})
		if err := tool.Process(d.URL); err != nil {
			log.Printf("hbold: skip %s: %v", d.URL, err)
			continue
		}
		count++
	}
	log.Printf("hbold: serving %d datasets on %s", len(tool.Datasets()), *addr)
	log.Fatal(http.ListenAndServe(*addr, server.New(tool)))
}

func cmdExtract(args []string) {
	if len(args) != 1 {
		usage()
	}
	st := loadTurtle(args[0])
	s, cs := pipeline(args[0], st)
	fmt.Printf("dataset        %s\n", args[0])
	fmt.Printf("triples        %d\n", s.Triples)
	fmt.Printf("classes        %d\n", s.NumClasses())
	fmt.Printf("instances      %d\n", s.TotalInstances)
	fmt.Printf("summary edges  %d\n", len(s.Edges))
	fmt.Printf("clusters       %d (modularity %.3f)\n", cs.NumClusters(), cs.Modularity)
	for i, c := range cs.Clusters {
		fmt.Printf("  cluster %-2d %-24s %d classes, %d instances\n", i, c.Label, len(c.Classes), c.Instances)
	}
}

func cmdRender(args []string) {
	if len(args) != 2 {
		usage()
	}
	st := loadTurtle(args[0])
	s, cs := pipeline(args[0], st)
	outdir := args[1]
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	focus := ""
	if len(s.Nodes) > 0 {
		// focus the highest-degree class, like the paper's Figure 7
		best, bestD := "", -1
		for _, n := range s.Nodes {
			if d := s.Degree(n.IRI); d > bestD {
				best, bestD = n.IRI, d
			}
		}
		focus = best
	}
	files := map[string]string{
		"treemap.svg":       viz.TreemapView(cs, s, 1000, 700),
		"sunburst.svg":      viz.SunburstView(cs, s, 800),
		"circlepack.svg":    viz.CirclePackView(cs, s, 800),
		"bundle.svg":        viz.BundleView(cs, s, focus, 900),
		"cluster-graph.svg": viz.ClusterGraphView(cs, 900),
		"summary-graph.svg": viz.SummaryGraphView(s, nil, 900),
	}
	for name, content := range files {
		path := filepath.Join(outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatalf("hbold: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}
}

func cmdCrawl() {
	corpus := synth.Corpus(1)
	portals := portal.BuildAll(corpus)
	reg := registry.New(registry.DefaultPolicy)
	for _, d := range corpus {
		if d.PreExisting {
			reg.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub})
		}
	}
	fmt.Printf("endpoints listed before crawl: %d\n", reg.Len())
	rep, err := crawler.Crawl(portals, reg, clock.Epoch)
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	for _, pr := range rep.Portals {
		fmt.Printf("  %-22s discovered %2d, already listed %2d, added %2d\n",
			pr.Portal, pr.Discovered, pr.AlreadyListed, pr.Added)
	}
	fmt.Printf("endpoints listed after crawl:  %d (+%d)\n", rep.ListedAfter, rep.TotalAdded())
}

func cmdQuery(args []string) {
	if len(args) != 2 {
		usage()
	}
	st := loadTurtle(args[0])
	res, err := sparql.Exec(st, args[1])
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	fmt.Print(res.Table())
}
