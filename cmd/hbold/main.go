// Command hbold is the H-BOLD command line: it can serve the
// presentation layer over a demo corpus, run the full server layer as a
// daemon with the concurrent extraction scheduler, run index extraction
// on a Turtle file, render the §3.5 visualizations to SVG files,
// simulate the §3.3 portal crawl, and list indexed datasets.
//
// Usage:
//
//	hbold serve [-addr :8080] [-datasets N] [-cache 64] [-slow-query 0] [-readonly=false]
//	hbold daemon [-addr :8080] [-datasets N] [-workers 4] [-poll 30s] [-retries 3] [-rate 0] [-cache 64] [-slow-query 0] [-readonly=false]
//	hbold extract <file.ttl>
//	hbold render <file.ttl> <outdir>
//	hbold crawl
//	hbold query [-timeout 0] [-stream] <file.ttl> <sparql-query>
//	hbold query [-timeout 0] [-stream] [-policy all] -endpoint URL [-endpoint URL ...] <sparql-query>
//	hbold sparqld [-addr :8081] [-quiet] [-readonly] <file.ttl>
//
// Live mutation: sparqld accepts SPARQL 1.1 Update requests (POST with
// Content-Type application/sparql-update or an update= form field) and
// applies them to the serving tier in place — both the in-memory store
// and a -data-dir disk store, where each request commits as one
// crash-safe WAL record. serve and daemon expose the same path on
// POST /api/update plus a change feed on GET /api/changes (NDJSON,
// ?since= replay); both default to -readonly=true and answer updates
// with 403 until started with -readonly=false, while sparqld defaults
// to writable and locks down with -readonly.
//
// Both server modes expose the process metrics registry in the
// Prometheus text format on GET /metrics (scheduler, snapshot cache,
// federation, endpoint clients and the query engine all account into
// it), per-source federation counters on GET /api/federation/stats, and
// a query profile via /api/query?...&explain=1 — the compiled plan
// annotated with per-stage row counts and timings instead of rows.
// -slow-query 500ms logs every /api/query slower than the threshold as
// a structured record (query hash, duration, rows); sparqld writes one
// such record per request unless -quiet.
//
// query runs through the same context-aware client API the rest of the
// tool uses: -timeout bounds the query with a context deadline, and
// -stream prints rows as NDJSON the moment the engine produces them
// (a head line {"vars": [...]}, then one binding object per row)
// instead of collecting the result into an aligned table. Repeating
// -endpoint federates the query over several live SPARQL endpoints: all
// of them evaluate concurrently and the row streams are merged
// incrementally (internal/federation), with DISTINCT deduplicated on
// the merge; -policy cost opens the cheapest source first.
//
// Both server modes keep a versioned snapshot cache in front of the
// presentation read path (-cache sets its budget in MiB; 0 disables
// it): summaries, cluster schemas, layout models and rendered SVG are
// memoized per dataset generation, responses carry "<url>@<generation>"
// ETags, and If-None-Match revalidations answer 304 without
// recomputing. Cache effectiveness is served on /api/cache.
//
// Daemon mode is the deployed shape of the paper's server layer: the
// HTTP presentation layer runs while a clock-driven refresh cycle polls
// the §3.1 policy every -poll interval and enqueues due endpoints on
// the internal/sched worker pool (-workers wide, with -retries
// exponential-backoff attempts per job and an optional -rate
// per-endpoint dispatch limit). Live queue state is served on
// /api/jobs and /api/metrics, a refresh can be forced with
// POST /api/refresh, and SIGINT/SIGTERM drains the pool before exit.
// Unlike serve, daemon does not index anything up front — watching
// /api/jobs right after startup shows the first cycle being worked off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/clock"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/faultinject"
	"repro/internal/federation"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/sched"
	"repro/internal/schema"
	"repro/internal/server"
	"repro/internal/snapcache"
	"repro/internal/store"
	"repro/internal/store/disk"
	"repro/internal/synth"
	"repro/internal/turtle"
	"repro/internal/update"
	"repro/internal/viz"
)

func main() {
	log.SetFlags(0)
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "serve":
		cmdServe(os.Args[2:])
	case "daemon":
		cmdDaemon(os.Args[2:])
	case "extract":
		cmdExtract(os.Args[2:])
	case "render":
		cmdRender(os.Args[2:])
	case "crawl":
		cmdCrawl()
	case "query":
		cmdQuery(os.Args[2:])
	case "sparqld":
		cmdSparqld(os.Args[2:])
	default:
		usage()
	}
}

// cmdSparqld serves a Turtle file as a plain SPARQL protocol endpoint —
// the counterpart of query's -endpoint flag, so a federation can be
// assembled entirely from the CLI: run one sparqld per file, then
// `hbold query -endpoint ... -endpoint ...` across them.
func cmdSparqld(args []string) {
	fs := flag.NewFlagSet("sparqld", flag.ExitOnError)
	addr := fs.String("addr", ":8081", "listen address")
	dataDir := fs.String("data-dir", "", "persistent data directory: an empty one is seeded from the Turtle file, a populated one serves from disk (file arg optional)")
	quiet := fs.Bool("quiet", false, "disable the per-request access log")
	readonly := fs.Bool("readonly", false, "refuse SPARQL updates with 403 (the query surface stays up)")
	// -chaos-* make this member misbehave on a deterministic schedule, so
	// a CLI-assembled federation exercises the resilience layer (breaker
	// trips, hedged opens, partial results) without real outages
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the chaos schedule (same seed, same misbehavior)")
	chaosLatency := fs.Duration("chaos-latency", 0, "fixed latency added to every response")
	chaosTail := fs.Duration("chaos-tail", 0, "extra tail latency (with -chaos-tail-prob)")
	chaosTailProb := fs.Float64("chaos-tail-prob", 0, "probability a request draws -chaos-tail extra latency")
	chaosErr := fs.Float64("chaos-error-rate", 0, "probability a request answers 500")
	chaosHole := fs.Float64("chaos-blackhole-rate", 0, "probability a request hangs until the client gives up")
	chaosCut := fs.Float64("chaos-cut-rate", 0, "probability the response is cut mid-stream")
	chaosCutAfter := fs.Int("chaos-cut-after", 0, "bytes to deliver before a cut (0 = faultinject default)")
	chaosGarbage := fs.Float64("chaos-garbage-rate", 0, "probability the response body is garbage bytes")
	chaosFlap := fs.Duration("chaos-flap-period", 0, "flapping period: each period the member is down with -chaos-flap-down-prob")
	chaosFlapDown := fs.Float64("chaos-flap-down-prob", 0.5, "probability of being down in a flap period")
	fs.Parse(args)
	var st store.Queryable
	var be store.Backend
	var triples int
	var source string
	switch {
	case *dataDir != "":
		if fs.NArg() > 1 {
			usage()
		}
		ds, err := disk.Open(*dataDir, disk.Options{})
		if err != nil {
			log.Fatalf("hbold: %v", err)
		}
		if ds.Len() == 0 {
			if fs.NArg() != 1 {
				log.Fatalf("hbold: %s is empty; give a Turtle file to seed it", *dataDir)
			}
			// CopyFrom keeps the in-memory tier's ID assignment, so the
			// seeded store is bit-identical to what -data-dir-less serving
			// of the same file would query
			if err := ds.CopyFrom(loadTurtle(fs.Arg(0)).Reader()); err != nil {
				log.Fatalf("hbold: seeding %s: %v", *dataDir, err)
			}
			source = fmt.Sprintf("%s (seeded from %s)", *dataDir, fs.Arg(0))
		} else {
			source = fmt.Sprintf("%s (restarted, no re-load)", *dataDir)
		}
		st, be, triples = ds, ds, ds.Len()
	case fs.NArg() == 1:
		mem := loadTurtle(fs.Arg(0))
		st, be, triples, source = mem, mem, mem.Len(), fs.Arg(0)
	default:
		usage()
	}
	h := &endpoint.Handler{Store: st, ReadOnly: *readonly}
	if !*readonly {
		// the SPARQL 1.1 Update surface: POST application/sparql-update
		// or an update= form field mutates the serving tier in place
		h.Update = func(ctx context.Context, text string) (int, int, error) {
			d, err := update.ApplyText(ctx, be, text)
			if err != nil {
				return 0, 0, err
			}
			return len(d.Added), len(d.Removed), nil
		}
	}
	if !*quiet {
		// one structured record per request: method, query hash, rows
		// streamed, duration, status
		h.Log = newLogger()
	}
	var handler http.Handler = h
	inj := faultinject.New(faultinject.Config{
		Seed:          *chaosSeed,
		Latency:       *chaosLatency,
		Tail:          *chaosTail,
		TailProb:      *chaosTailProb,
		ErrorRate:     *chaosErr,
		BlackholeRate: *chaosHole,
		CutRate:       *chaosCut,
		CutAfter:      *chaosCutAfter,
		GarbageRate:   *chaosGarbage,
		FlapPeriod:    *chaosFlap,
		FlapDownProb:  *chaosFlapDown,
	})
	if inj.Enabled() {
		handler = inj.Middleware(handler)
		log.Printf("hbold: chaos injection enabled (seed %d)", *chaosSeed)
	}
	log.Printf("hbold: serving %s (%d triples) as a SPARQL endpoint on %s", source, triples, *addr)
	log.Fatal(http.ListenAndServe(*addr, handler))
}

// newLogger builds the CLI's structured logger: text records on stderr,
// so access and slow-query logs interleave with the plain log package's
// startup lines without fighting over stdout.
func newLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  hbold serve [-addr :8080] [-datasets N] [-data-dir DIR] [-cache 64] [-slow-query 0] [-readonly=false]
                                            start the presentation layer over a demo corpus
                                            (-data-dir: persist the document store and mirror
                                            each corpus to disk; a restart serves from DIR
                                            without re-extraction; -cache: snapshot cache
                                            budget in MiB, 0 disables; -slow-query: log
                                            /api/query slower than this; -readonly=false
                                            enables POST /api/update — the default refuses
                                            updates with 403)
  hbold daemon [-addr :8080] [-datasets N] [-workers 4] [-poll 30s] [-retries 3] [-rate 0] [-data-dir DIR] [-cache 64] [-slow-query 0] [-readonly=false]
                                            serve plus the concurrent extraction scheduler on
                                            the clock-driven §3.1 refresh cycle (-data-dir as
                                            in serve: restart resumes the catalog and skips
                                            re-extracting fresh datasets)
  hbold extract <file.ttl>                  run index extraction on a Turtle file
  hbold render <file.ttl> <outdir>          render all visualizations of a Turtle file to SVG
  hbold crawl                               simulate the §3.3 open-data-portal crawl
  hbold query [-timeout 0] [-stream] <file.ttl> <sparql>
                                            run a SPARQL query over a Turtle file
                                            (-timeout: context deadline; -stream: NDJSON
                                            rows as they arrive instead of a table)
  hbold query -endpoint URL [-endpoint URL ...] [-policy all|prune|cost] <sparql>
                                            federate the query over several live endpoints,
                                            merging the row streams incrementally
  hbold sparqld [-addr :8081] [-data-dir DIR] [-quiet] [-readonly] [-chaos-*] [file.ttl]
                                            serve a Turtle file as a SPARQL protocol endpoint
                                            (-data-dir: disk-backed store — an empty DIR is
                                            seeded from file.ttl, a populated one serves
                                            straight from disk and the file arg is optional;
                                            SPARQL 1.1 Update accepted via POST
                                            application/sparql-update or update= unless
                                            -readonly, which answers updates with 403;
                                            a federation member for query -endpoint; one
                                            access-log record per request unless -quiet;
                                            results as JSON, CSV, TSV or XML via the Accept
                                            header or ?format=; -chaos-latency, -chaos-tail,
                                            -chaos-tail-prob, -chaos-error-rate,
                                            -chaos-blackhole-rate, -chaos-cut-rate,
                                            -chaos-cut-after, -chaos-garbage-rate,
                                            -chaos-flap-period, -chaos-flap-down-prob and
                                            -chaos-seed make the member misbehave on a
                                            deterministic schedule for resilience testing)`)
	os.Exit(2)
}

func loadTurtle(path string) *store.Store {
	data, err := os.ReadFile(path)
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	g, err := turtle.Parse(string(data))
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	return store.FromGraph(g)
}

// newTool builds the core instance for serve/daemon: memory-only by
// default, or rooted at dataDir (document store under docs/, mirrored
// corpora under corpus/) with the persisted registry restored.
func newTool(dataDir string) *core.HBOLD {
	if dataDir == "" {
		return core.New(docstore.MustOpenMem(), clock.Real{})
	}
	db, err := docstore.Open(filepath.Join(dataDir, "docs"))
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	tool := core.New(db, clock.Real{})
	tool.CorpusDir = filepath.Join(dataDir, "corpus")
	if err := tool.LoadState(); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	return tool
}

// indexedOnDisk reports whether url can be served from persistent state
// alone: its registry entry was restored as indexed, its summary loads
// from the document store, and its mirrored corpus is populated — in
// which case serve skips the startup extraction entirely.
func indexedOnDisk(tool *core.HBOLD, url string) bool {
	if tool.CorpusDir == "" {
		return false
	}
	e, ok := tool.Registry.Get(url)
	if !ok || !e.Indexed {
		return false
	}
	if _, err := tool.Summary(url); err != nil {
		return false
	}
	ds, err := tool.Corpus(url)
	return err == nil && ds.Len() > 0
}

// pipeline runs extract → summary → cluster over a local store.
func pipeline(name string, st *store.Store) (*schema.Summary, *cluster.Schema) {
	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	tool.Registry.Add(registry.Entry{URL: name, Title: name, AddedAt: clock.Epoch})
	tool.Connect(name, endpoint.LocalClient{Store: st})
	if err := tool.Process(name); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	s, _ := tool.Summary(name)
	cs, _ := tool.ClusterSchema(name)
	return s, cs
}

func cmdServe(args []string) {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("datasets", 5, "number of demo datasets to index (plus the Scholarly LD)")
	dataDir := fs.String("data-dir", "", "persistent data directory (document store + mirrored corpora); a restart serves from it without re-extraction")
	cacheMB := fs.Int64("cache", 64, "snapshot cache budget in MiB (0 disables caching)")
	slowQuery := fs.Duration("slow-query", 0, "log /api/query requests at least this slow (0 disables)")
	readonly := fs.Bool("readonly", true, "refuse POST /api/update with 403 (default: the demo corpus serves read-only)")
	fs.Parse(args)

	tool := newTool(*dataDir)
	tool.Cache = snapcache.New(*cacheMB << 20)
	surl := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: surl, Title: "Scholarly LD"})
	tool.Connect(surl, endpoint.LocalClient{Store: synth.Scholarly(1)})
	reused := 0
	if indexedOnDisk(tool, surl) {
		reused++
	} else if err := tool.Process(surl); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	count := 0
	for _, d := range synth.Corpus(1) {
		if count >= *n {
			break
		}
		if !d.Indexable || d.Dead || d.OutageProb > 0 {
			continue
		}
		tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title})
		tool.Connect(d.URL, endpoint.LocalClient{Store: synth.BuildStore(d)})
		if indexedOnDisk(tool, d.URL) {
			reused++
			count++
			continue
		}
		if err := tool.Process(d.URL); err != nil {
			log.Printf("hbold: skip %s: %v", d.URL, err)
			continue
		}
		count++
	}
	if *dataDir != "" {
		if err := tool.SaveState(); err != nil {
			log.Fatalf("hbold: %v", err)
		}
		log.Printf("hbold: persistent data in %s (%d datasets served from disk without re-extraction)", *dataDir, reused)
	}
	srv := server.New(tool)
	srv.ReadOnly = *readonly
	if *slowQuery > 0 {
		srv.Log = newLogger()
		srv.SlowQuery = *slowQuery
	}
	log.Printf("hbold: serving %d datasets on %s", len(tool.Datasets()), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}

// cmdDaemon runs the server layer the way the deployed tool does:
// endpoints are registered but not indexed up front; the scheduler
// works them off concurrently while the HTTP layer serves whatever is
// indexed so far, plus the live job queue.
func cmdDaemon(args []string) {
	fs := flag.NewFlagSet("daemon", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	n := fs.Int("datasets", 12, "number of demo endpoints to register (flaky ones included)")
	workers := fs.Int("workers", 4, "extraction worker pool size")
	poll := fs.Duration("poll", 30*time.Second, "how often to check the §3.1 policy for due endpoints")
	retries := fs.Int("retries", 3, "extraction attempts per job before waiting for the next retry day")
	rate := fs.Float64("rate", 0, "per-endpoint job dispatch limit in jobs/sec (0 = unlimited)")
	dataDir := fs.String("data-dir", "", "persistent data directory (document store + mirrored corpora); a restart resumes the catalog and skips re-extracting fresh datasets")
	cacheMB := fs.Int64("cache", 64, "snapshot cache budget in MiB (0 disables caching)")
	slowQuery := fs.Duration("slow-query", 0, "log /api/query requests at least this slow (0 disables)")
	readonly := fs.Bool("readonly", true, "refuse POST /api/update with 403 (default: the daemon serves read-only)")
	fs.Parse(args)

	tool := newTool(*dataDir)
	tool.Cache = snapcache.New(*cacheMB << 20)
	tool.SchedulerConfig = sched.Config{
		Workers: *workers,
		Retry:   sched.RetryPolicy{MaxAttempts: *retries, BaseBackoff: 2 * time.Second, MaxBackoff: time.Minute},
		Rate:    sched.RateLimit{PerSecond: *rate},
	}
	now := tool.Clock.Now()
	count := 0
	for i, d := range synth.Corpus(1) {
		if count >= *n {
			break
		}
		if !d.Indexable || d.Dead {
			continue
		}
		tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub, AddedAt: now})
		if d.OutageProb > 0 {
			// keep the outage model so the daemon's retry/backoff paths
			// actually fire against the wall clock
			tool.Connect(d.URL, endpoint.NewRemote(d.Name, d.URL, synth.BuildStore(d), nil,
				endpoint.NewAvailability(int64(i), d.OutageProb), tool.Clock))
		} else {
			tool.Connect(d.URL, endpoint.LocalClient{Store: synth.BuildStore(d)})
		}
		count++
	}

	handler := server.New(tool)
	handler.ReadOnly = *readonly
	if *slowQuery > 0 {
		handler.Log = newLogger()
		handler.SlowQuery = *slowQuery
	}
	srv := &http.Server{Addr: *addr, Handler: handler}
	go func() {
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("hbold: %v", err)
		}
	}()
	policy := tool.Registry.Policy()
	if *dataDir != "" {
		// restored entries keep their schedule state: a dataset extracted
		// within the refresh interval is not due, so the boot submit below
		// skips it and its queries run over the persisted artifacts
		log.Printf("hbold: persistent data in %s — %d datasets already indexed on disk", *dataDir, tool.Registry.IndexedCount())
	}
	log.Printf("hbold: daemon on %s — %d endpoints, %d workers, polling every %s (refresh %s, retry %s)",
		*addr, count, *workers, *poll, policy.RefreshInterval, policy.RetryInterval)
	log.Printf("hbold: watch the queue on /api/jobs and /api/metrics")

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(*poll)
	defer ticker.Stop()
	if enq := tool.SubmitDue(); enq > 0 {
		log.Printf("hbold: enqueued %d due endpoints", enq)
	}
	for {
		select {
		case <-ticker.C:
			if enq := tool.SubmitDue(); enq > 0 {
				log.Printf("hbold: enqueued %d due endpoints", enq)
			}
		case sig := <-stop:
			log.Printf("hbold: %s — shutting down", sig)
			// stop HTTP ingress first so /api/refresh cannot keep
			// re-enqueuing jobs while the pool drains; each phase gets
			// its own budget
			httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
			if err := srv.Shutdown(httpCtx); err != nil {
				log.Printf("hbold: http shutdown: %v", err)
			}
			cancelHTTP()
			drainCtx, cancelDrain := context.WithTimeout(context.Background(), 30*time.Second)
			if err := tool.Scheduler().Drain(drainCtx); err != nil {
				log.Printf("hbold: drain incomplete: %v", err)
			}
			cancelDrain()
			if *dataDir != "" {
				if err := tool.SaveState(); err != nil {
					log.Printf("hbold: save state: %v", err)
				}
			}
			tool.Close()
			m := tool.Scheduler().Metrics()
			log.Printf("hbold: done — %d succeeded, %d failed, %d retries", m.Succeeded, m.Failed, m.Retries)
			return
		}
	}
}

func cmdExtract(args []string) {
	if len(args) != 1 {
		usage()
	}
	st := loadTurtle(args[0])
	s, cs := pipeline(args[0], st)
	fmt.Printf("dataset        %s\n", args[0])
	fmt.Printf("triples        %d\n", s.Triples)
	fmt.Printf("classes        %d\n", s.NumClasses())
	fmt.Printf("instances      %d\n", s.TotalInstances)
	fmt.Printf("summary edges  %d\n", len(s.Edges))
	fmt.Printf("clusters       %d (modularity %.3f)\n", cs.NumClusters(), cs.Modularity)
	for i, c := range cs.Clusters {
		fmt.Printf("  cluster %-2d %-24s %d classes, %d instances\n", i, c.Label, len(c.Classes), c.Instances)
	}
}

func cmdRender(args []string) {
	if len(args) != 2 {
		usage()
	}
	st := loadTurtle(args[0])
	s, cs := pipeline(args[0], st)
	outdir := args[1]
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		log.Fatalf("hbold: %v", err)
	}
	focus := ""
	if len(s.Nodes) > 0 {
		// focus the highest-degree class, like the paper's Figure 7
		best, bestD := "", -1
		for _, n := range s.Nodes {
			if d := s.Degree(n.IRI); d > bestD {
				best, bestD = n.IRI, d
			}
		}
		focus = best
	}
	files := map[string]string{
		"treemap.svg":       viz.TreemapView(cs, s, 1000, 700),
		"sunburst.svg":      viz.SunburstView(cs, s, 800),
		"circlepack.svg":    viz.CirclePackView(cs, s, 800),
		"bundle.svg":        viz.BundleView(cs, s, focus, 900),
		"cluster-graph.svg": viz.ClusterGraphView(cs, 900),
		"summary-graph.svg": viz.SummaryGraphView(s, nil, 900),
	}
	for name, content := range files {
		path := filepath.Join(outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatalf("hbold: %v", err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(content))
	}
}

func cmdCrawl() {
	corpus := synth.Corpus(1)
	portals := portal.BuildAll(corpus)
	reg := registry.New(registry.DefaultPolicy)
	for _, d := range corpus {
		if d.PreExisting {
			reg.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub})
		}
	}
	fmt.Printf("endpoints listed before crawl: %d\n", reg.Len())
	rep, err := crawler.Crawl(context.Background(), portals, reg, clock.Epoch)
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	for _, pr := range rep.Portals {
		fmt.Printf("  %-22s discovered %2d, already listed %2d, added %2d\n",
			pr.Portal, pr.Discovered, pr.AlreadyListed, pr.Added)
	}
	fmt.Printf("endpoints listed after crawl:  %d (+%d)\n", rep.ListedAfter, rep.TotalAdded())
}

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func cmdQuery(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	timeout := fs.Duration("timeout", 0, "abort the query after this long (0 = no deadline)")
	stream := fs.Bool("stream", false, "print rows as NDJSON as they arrive instead of a table")
	policy := fs.String("policy", "all", "federated source selection: all, prune, or cost")
	var endpoints multiFlag
	fs.Var(&endpoints, "endpoint", "SPARQL endpoint URL; repeat to federate over several (replaces the <file.ttl> argument)")
	fs.Parse(args)
	args = fs.Args()
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	var c endpoint.Client
	switch {
	case len(endpoints) > 0:
		if len(args) != 1 {
			usage()
		}
		pol, err := federation.ParsePolicy(*policy)
		if err != nil {
			log.Fatalf("hbold: %v", err)
		}
		sources := make([]*endpoint.Source, 0, len(endpoints))
		for _, u := range endpoints {
			src := endpoint.NewSource(u, u, endpoint.NewHTTPClient(u))
			src.Cost = endpoint.DefaultCost
			sources = append(sources, src)
		}
		fed := federation.New(sources...)
		// no local index store to prune by, and the CLI has no per-source
		// cost data: prune and cost both degenerate to fanning out in
		// configuration order
		fed.Policy = pol
		// same resilience posture as the server's federation: route
		// around members that refuse to open, hedge slow opens
		fed.SkipUnavailable = true
		fed.Hedge = true
		c = fed
		args = []string{"", args[0]}
	case len(args) == 2:
		c = endpoint.LocalClient{Store: loadTurtle(args[0])}
	default:
		usage()
	}
	if !*stream {
		res, err := c.Query(ctx, args[1])
		if err != nil {
			log.Fatalf("hbold: %v", err)
		}
		fmt.Print(res.Table())
		return
	}
	rs, err := endpoint.Stream(ctx, c, args[1])
	if err != nil {
		log.Fatalf("hbold: %v", err)
	}
	defer rs.Close()
	out := json.NewEncoder(os.Stdout)
	if rs.Ask {
		out.Encode(map[string]bool{"ask": true, "boolean": rs.Boolean})
		return
	}
	if rs.Graph != nil {
		// CONSTRUCT has no row stream; print the graph as triples
		for _, tr := range rs.Graph.Triples() {
			fmt.Println(tr.String())
		}
		return
	}
	out.Encode(map[string][]string{"vars": rs.Vars})
	for row := range rs.All() {
		if err := out.Encode(row); err != nil {
			log.Fatalf("hbold: %v", err)
		}
	}
	if err := rs.Err(); err != nil {
		log.Fatalf("hbold: stream failed: %v", err)
	}
}
