package repro

// End-to-end integration tests across all modules: the full H-BOLD
// lifecycle from portal crawl through daily extraction to the HTTP
// presentation layer, over the simulated endpoint corpus.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/extraction"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/server"
	"repro/internal/synth"
)

// TestEndToEndLifecycle walks the whole Figure 1 architecture: seed the
// old endpoint list, crawl the portals, run the daily job for several
// simulated days, then drive the presentation layer over HTTP.
func TestEndToEndLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("full lifecycle is slow")
	}
	corpus := synth.Corpus(7)
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	defer tool.Close()

	// 1. the pre-crawl registry (610 endpoints)
	for _, d := range corpus {
		if d.PreExisting {
			tool.Registry.Add(registry.Entry{URL: d.URL, Title: d.Title, Source: registry.SourceDataHub, AddedAt: ck.Now()})
		}
	}

	// 2. crawl the portals: 610 → 680
	rep, err := tool.CrawlPortals(context.Background(), portal.BuildAll(corpus))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ListedAfter != synth.TotalEndpoints || rep.TotalAdded() != synth.NewEndpoints {
		t.Fatalf("crawl: %d listed, +%d", rep.ListedAfter, rep.TotalAdded())
	}

	// 3. connect remotes for a manageable slice of the corpus: all the
	// indexable endpoints plus a sample of dead/broken ones
	connected := 0
	deadConnected := 0
	for i, d := range corpus {
		if d.Indexable {
			tool.Connect(d.URL, synth.BuildRemote(d, ck, int64(i)))
			connected++
		} else if deadConnected < 20 {
			tool.Connect(d.URL, synth.BuildRemote(d, ck, int64(i)))
			deadConnected++
		}
	}
	if connected != synth.TotalIndexable {
		t.Fatalf("connected %d indexable, want %d", connected, synth.TotalIndexable)
	}

	// 4. daily extraction job for a simulated week — flaky endpoints get
	// their §3.1 retries
	for day := 0; day < 7; day++ {
		tool.RunDue()
		ck.AdvanceDays(1)
	}
	indexed := tool.Registry.IndexedCount()
	if indexed != synth.TotalIndexable {
		t.Fatalf("indexed = %d, want %d (paper: 130)", indexed, synth.TotalIndexable)
	}

	// 5. every indexed dataset has valid persisted artifacts
	for _, info := range tool.Datasets() {
		s, err := tool.Summary(info.URL)
		if err != nil {
			t.Fatalf("summary %s: %v", info.URL, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("summary %s invalid: %v", info.URL, err)
		}
		cs, err := tool.ClusterSchema(info.URL)
		if err != nil {
			t.Fatalf("cluster %s: %v", info.URL, err)
		}
		if err := cs.Validate(); err != nil {
			t.Fatalf("cluster %s invalid: %v", info.URL, err)
		}
		if cs.TotalInstances != s.TotalInstances {
			t.Fatalf("instance mismatch on %s", info.URL)
		}
	}

	// 6. presentation layer over HTTP
	srv := httptest.NewServer(server.New(tool))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/api/datasets")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var list []core.DatasetInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list) != indexed {
		t.Fatalf("dataset list = %d, want %d", len(list), indexed)
	}
	// render one view of the first dataset
	resp, err = http.Get(srv.URL + "/view/treemap?dataset=" + url.QueryEscape(list[0].URL))
	if err != nil {
		t.Fatal(err)
	}
	svgBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.HasPrefix(string(svgBody), "<svg") {
		t.Fatalf("treemap render failed: %d", resp.StatusCode)
	}
}

// TestExtractionOverProtocol runs index extraction through the real HTTP
// SPARQL protocol rather than in-process clients.
func TestExtractionOverProtocol(t *testing.T) {
	st := synth.Generate(synth.Spec{Name: "proto", Classes: 8, Instances: 400, ObjectProps: 12, DataProps: 8, LinkFactor: 1, Seed: 6})
	srv := endpoint.Serve(st, nil)
	defer srv.Close()
	client := endpoint.NewHTTPClient(srv.URL)
	ix, err := extraction.New().Extract(context.Background(), client, srv.URL, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumClasses() != 8 || ix.Instances != 400 {
		t.Fatalf("index = %d classes, %d instances", ix.NumClasses(), ix.Instances)
	}
	// and the same through a quirky endpoint over HTTP
	srv2 := endpoint.Serve(st, endpoint.ProfileNoAgg)
	defer srv2.Close()
	ix2, err := extraction.New().Extract(context.Background(), endpoint.NewHTTPClient(srv2.URL), srv2.URL, clock.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Strategy != "enumerate" {
		t.Fatalf("strategy = %s", ix2.Strategy)
	}
	if ix2.Instances != ix.Instances || ix2.NumClasses() != ix.NumClasses() {
		t.Fatal("protocol extraction strategies disagree")
	}
}

// TestPaperCountsEndToEnd re-asserts the §3.3 arithmetic at system level.
func TestPaperCountsEndToEnd(t *testing.T) {
	if synth.PreExistingEndpoints != 610 || synth.TotalEndpoints != 680 ||
		synth.PreExistingIndexable != 110 || synth.TotalIndexable != 130 ||
		synth.NewEndpoints != 70 {
		t.Fatal("corpus constants drifted from the paper")
	}
	if synth.PortalEDPDatasets+synth.PortalEUODPDatasets+synth.PortalIODSDatasets != 89 {
		t.Fatal("portal dataset split must total 89")
	}
}
