// Package repro is a from-scratch Go reproduction of "Providing Effective
// Visualizations over Big Linked Data" (Desimoni & Po, EDBT/ICDT 2020
// Workshops): the H-BOLD system for hierarchical, interactive visual
// exploration of big Linked Data, together with every substrate it needs
// (SPARQL engine and protocol, endpoint simulation, document store,
// community detection, a concurrent extraction scheduler, a versioned
// snapshot cache in front of the presentation read path, and the
// D3-style layouts re-implemented as pure-Go geometry).
//
// The cache layer (internal/snapcache) generalizes the paper's §3.2
// lesson — precompute the Cluster Schema instead of recomputing it per
// view — to every presentation read: summaries, cluster schemas, layout
// models and rendered SVG are memoized per dataset generation, a counter
// internal/core bumps whenever an extraction job succeeds, and
// internal/server serves matching "<url>@<generation>" ETags so
// unchanged datasets revalidate with 304 instead of recomputing.
//
// The query layer (internal/sparql over internal/store) compiles each
// query into an ID-space plan: solution rows are flat slot arrays of
// interned store IDs in a packed arena, joins run on sorted posting
// lists through a lock-once store.Reader, and terms materialize only at
// projection and expression boundaries. The original term-space
// evaluator survives as the EngineLegacy fallback and differential-test
// reference.
//
// Queries execute through a context-aware streaming surface:
// endpoint.Client carries the caller's deadline and cancellation to the
// wire, endpoint.Stream returns rows as a sparql.RowSeq the moment the
// engine produces them, the SPARQL protocol moves bindings one at a
// time in both directions (incremental server writes with flushes,
// token-wise client decoding), and extraction, the crawler, the query
// builder and the server's streaming /api/query route all consume rows
// without ever materializing a full result.
//
// The federation layer (internal/federation over endpoint.Source) makes
// N endpoints answer as one: FederatedClient implements the same
// Client/Streamer surface, fans each query out under per-branch
// contexts, k-way-merges the row streams with bounded per-branch
// buffering (DISTINCT deduplicated on the merge, first fatal error
// canceling every branch), and selects sources before fan-out by the
// extracted indexes — endpoints whose index provably cannot answer the
// query's required predicates and classes are never contacted.
//
// See README.md for the quickstart and HTTP API, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured record.
// The benchmarks in bench_test.go regenerate every figure and
// quantitative claim of the paper; cmd/hbold is the CLI and
// cmd/hbold-bench the experiment harness.
package repro
