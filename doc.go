// Package repro is a from-scratch Go reproduction of "Providing Effective
// Visualizations over Big Linked Data" (Desimoni & Po, EDBT/ICDT 2020
// Workshops): the H-BOLD system for hierarchical, interactive visual
// exploration of big Linked Data, together with every substrate it needs
// (SPARQL engine and protocol, endpoint simulation, document store,
// community detection, a concurrent extraction scheduler, and the
// D3-style layouts re-implemented as pure-Go geometry).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record. The benchmarks in bench_test.go regenerate
// every figure and quantitative claim of the paper; cmd/hbold is the CLI
// and cmd/hbold-bench the experiment harness.
package repro
