// Quickstart: index a Linked Data source with H-BOLD and print its
// Cluster Schema — the minimal end-to-end use of the public API.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/synth"
)

func main() {
	// 1. Create the tool: a document store (the MongoDB stand-in) plus a
	// clock. The real clock is fine for interactive use.
	tool := core.New(docstore.MustOpenMem(), clock.Real{})

	// 2. Register a SPARQL endpoint and connect a client for it. Here the
	// endpoint is the synthetic ScholarlyData source served in-process;
	// endpoint.NewHTTPClient("https://.../sparql") would work the same
	// way against a live endpoint.
	url := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD"})
	tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})

	// 3. Run the server-layer pipeline: index extraction → Schema
	// Summary → Cluster Schema → persistence.
	if err := tool.Process(url); err != nil {
		log.Fatal(err)
	}

	// 4. Read the artifacts back, exactly as the presentation layer does.
	s, err := tool.Summary(url)
	if err != nil {
		log.Fatal(err)
	}
	cs, err := tool.ClusterSchema(url)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dataset: %s\n", url)
	fmt.Printf("  %d triples, %d classes, %d instances\n", s.Triples, s.NumClasses(), s.TotalInstances)
	fmt.Printf("  Schema Summary: %d nodes, %d edges\n", s.NumClasses(), len(s.Edges))
	fmt.Printf("  Cluster Schema: %d clusters (modularity %.3f)\n\n", cs.NumClusters(), cs.Modularity)
	for i, c := range cs.Clusters {
		fmt.Printf("  cluster %d %q — %d classes, %d instances\n", i, c.Label, len(c.Classes), c.Instances)
		for _, iri := range c.Classes {
			n, _ := s.NodeByIRI(iri)
			fmt.Printf("      %-20s %6d instances, %d attributes\n", n.Label, n.Instances, len(n.Attributes))
		}
	}
}
