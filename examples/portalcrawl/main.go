// Portalcrawl reproduces §3.3: H-BOLD starts from the old DataHub list of
// 610 endpoints, crawls the three open data portals with the paper's
// Listing 1 query, and grows the list to 680 (+70 new); then a few days
// of the daily extraction job raise the indexed population from 110
// toward 130.
//
// Run with: go run ./examples/portalcrawl
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/portal"
	"repro/internal/registry"
	"repro/internal/synth"
)

func main() {
	corpus := synth.Corpus(1)
	ck := clock.NewSim(clock.Epoch)
	tool := core.New(docstore.MustOpenMem(), ck)
	defer tool.Close()

	// the pre-crawl registry: H-BOLD's old endpoint list
	for _, d := range corpus {
		if d.PreExisting {
			tool.Registry.Add(registry.Entry{
				URL: d.URL, Title: d.Title,
				Source: registry.SourceDataHub, AddedAt: ck.Now(),
			})
		}
	}
	fmt.Printf("before crawl: %d endpoints listed\n\n", tool.Registry.Len())

	// crawl the portals with Listing 1
	rep, err := tool.CrawlPortals(context.Background(), portal.BuildAll(corpus))
	if err != nil {
		log.Fatal(err)
	}
	for _, pr := range rep.Portals {
		fmt.Printf("%-24s discovered %2d endpoints (%2d already listed, %2d new)\n",
			pr.Portal, pr.Discovered, pr.AlreadyListed, pr.Added)
	}
	fmt.Printf("\nafter crawl: %d endpoints listed (+%d)\n", rep.ListedAfter, rep.TotalAdded())

	// connect simulated remotes and run the daily job for a week so the
	// §3.1 retry policy can work through transient outages
	for i, d := range corpus {
		tool.Connect(d.URL, synth.BuildRemote(d, ck, int64(i)))
	}
	fmt.Println("\nrunning the daily extraction job:")
	for day := 0; day < 7; day++ {
		ok, failed := tool.RunDue()
		fmt.Printf("  day %d: %3d extractions ok, %3d failed — %3d endpoints indexed\n",
			day, ok, failed, tool.Registry.IndexedCount())
		ck.AdvanceDays(1)
	}
	fmt.Printf("\nindexed endpoints: %d (paper: 110 → 130)\n", tool.Registry.IndexedCount())
}
