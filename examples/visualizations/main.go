// Visualizations renders the paper's Figures 4–7 over the Scholarly LD:
// treemap, sunburst and circle packing of the Cluster Schema, and the
// hierarchical edge bundling of the Schema Summary focused on the Event
// class (ranges in green, domains in red, exactly as Figure 7).
//
// Run with: go run ./examples/visualizations [outdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/viz"
)

func main() {
	outdir := "viz-out"
	if len(os.Args) > 1 {
		outdir = os.Args[1]
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	url := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD"})
	tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(url); err != nil {
		log.Fatal(err)
	}
	s, _ := tool.Summary(url)
	cs, _ := tool.ClusterSchema(url)

	figures := []struct {
		file, figure, content string
	}{
		{"figure4-treemap.svg", "Figure 4 (treemap)", viz.TreemapView(cs, s, 1000, 700)},
		{"figure5-sunburst.svg", "Figure 5 (sunburst)", viz.SunburstView(cs, s, 800)},
		{"figure6-circlepack.svg", "Figure 6 (circle packing)", viz.CirclePackView(cs, s, 800)},
		{"figure7-bundling.svg", "Figure 7 (edge bundling, focus Event)",
			viz.BundleView(cs, s, synth.ScholarlyNS+"Event", 900)},
	}
	for _, f := range figures {
		path := filepath.Join(outdir, f.file)
		if err := os.WriteFile(path, []byte(f.content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s → %s (%d bytes)\n", f.figure, path, len(f.content))
	}
}
