// Scholarly reproduces the paper's Figure 2 walkthrough step by step:
// Cluster Schema → focus on the Event class → iterative expansion →
// complete Schema Summary, printing the node-count and instance-coverage
// feedback the tool shows at every step, and writing an SVG per step.
//
// Run with: go run ./examples/scholarly [outdir]
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/registry"
	"repro/internal/synth"
	"repro/internal/viz"
)

func main() {
	outdir := "scholarly-out"
	if len(os.Args) > 1 {
		outdir = os.Args[1]
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		log.Fatal(err)
	}

	tool := core.New(docstore.MustOpenMem(), clock.NewSim(clock.Epoch))
	url := "http://scholarly.example.org/sparql"
	tool.Registry.Add(registry.Entry{URL: url, Title: "Scholarly LD"})
	tool.Connect(url, endpoint.LocalClient{Store: synth.Scholarly(1)})
	if err := tool.Process(url); err != nil {
		log.Fatal(err)
	}
	s, _ := tool.Summary(url)
	cs, _ := tool.ClusterSchema(url)

	write := func(name, content string) {
		path := filepath.Join(outdir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("    wrote %s\n", path)
	}

	// Step 1 — the Cluster Schema, the high-level entry point.
	fmt.Printf("step 1: Cluster Schema — %d clusters over %d classes\n", cs.NumClusters(), s.NumClasses())
	write("step1-cluster-schema.svg", viz.ClusterGraphView(cs, 900))

	// Step 2 — the user selects the Event class within a cluster.
	event := synth.ScholarlyNS + "Event"
	ex, err := tool.Explore(url, event)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 2: focus on Event — %d node, %.1f%% of instances\n", ex.NodeCount(), ex.Coverage())
	write("step2-focus-event.svg", viz.SummaryGraphView(s, ex.VisibleSet(), 900))

	// Step 3 — expanding Event reveals its connections.
	added, err := ex.Expand(event)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("step 3: expand Event (+%d classes) — %d nodes, %.1f%% of instances\n",
		len(added), ex.NodeCount(), ex.Coverage())
	write("step3-expanded.svg", viz.SummaryGraphView(s, ex.VisibleSet(), 900))

	// Step 4 — repeated expansion reaches the full Schema Summary.
	rounds := ex.ExpandAll()
	fmt.Printf("step 4: full Schema Summary after %d rounds — %d nodes, %.1f%% of instances (complete=%v)\n",
		rounds, ex.NodeCount(), ex.Coverage(), ex.Complete())
	write("step4-full-summary.svg", viz.SummaryGraphView(s, nil, 900))
}
