// Querybuilder demonstrates H-BOLD's visual querying: the user composes
// a query by clicking classes, attributes and connections in the Schema
// Summary view, and the tool generates and executes the SPARQL query
// automatically.
//
// Run with: go run ./examples/querybuilder
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/endpoint"
	"repro/internal/querybuilder"
	"repro/internal/synth"
)

func main() {
	// The user is exploring the Scholarly LD's Schema Summary.
	st := synth.Scholarly(1)
	client := endpoint.LocalClient{Store: st}

	// Visual selection: the Event class, its label attribute, the
	// hasSituation connection to Situation with its description, and a
	// regex filter on the label — all clicks in the UI.
	q := &querybuilder.Query{
		Class:      synth.ScholarlyNS + "Event",
		Attributes: []string{synth.ScholarlyNS + "label"},
		Paths: []querybuilder.Path{{
			Property:    synth.ScholarlyNS + "hasSituation",
			TargetClass: synth.ScholarlyNS + "Situation",
			Attributes:  []string{synth.ScholarlyNS + "description"},
		}},
		Filters: []querybuilder.Filter{
			{Var: "label", Op: "regex", Value: "label 1"},
		},
		Distinct: true,
		Limit:    10,
	}

	text, err := q.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("generated SPARQL:")
	fmt.Println(text)
	fmt.Println()

	res, err := q.Run(context.Background(), client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("results (%d rows):\n%s", len(res.Rows), res.Table())

	// A second visual query: count the InProceedings per author, going
	// backwards along the author property.
	q2 := &querybuilder.Query{
		Class:     synth.ScholarlyNS + "InProceedings",
		Paths:     []querybuilder.Path{{Property: synth.ScholarlyNS + "author"}},
		CountOnly: true,
	}
	text2, err := q2.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncount query:")
	fmt.Println(text2)
	res2, err := q2.Run(context.Background(), client)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nauthor links: %s\n", res2.Rows[0]["count"].Value)
}
