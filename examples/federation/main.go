// Federation: query N SPARQL endpoints as if they were one.
//
// The scholarly corpus is partitioned by class across three in-process
// endpoints, each is indexed (so the document store holds a per-endpoint
// extraction index), and a FederatedClient is built over the registry.
// The demo then runs one broad query — every member contributes to the
// merged stream — and one class-specific query under IndexPrune, where
// the extracted indexes prove two of the three endpoints cannot answer
// and the query never reaches them.
//
// Run with: go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/docstore"
	"repro/internal/endpoint"
	"repro/internal/federation"
	"repro/internal/registry"
	"repro/internal/synth"
)

func main() {
	tool := core.New(docstore.MustOpenMem(), clock.Real{})

	// 1. Partition one corpus across three endpoints and index each —
	// in production these would be three independent public endpoints.
	parts := synth.PartitionByClass(synth.Scholarly(1), 3)
	var urls []string
	for i, p := range parts {
		url := fmt.Sprintf("http://part%d.example.org/sparql", i)
		urls = append(urls, url)
		tool.Registry.Add(registry.Entry{URL: url, Title: fmt.Sprintf("Scholarly shard %d", i)})
		tool.Connect(url, endpoint.LocalClient{Store: p})
		if err := tool.Process(url); err != nil {
			log.Fatal(err)
		}
	}

	// 2. Build a federation over every connected endpoint. It implements
	// endpoint.Client/Streamer, so anything that talks to one endpoint
	// can talk to all three through it.
	fed, err := tool.Federation(urls, federation.IndexPrune)
	if err != nil {
		log.Fatal(err)
	}

	// 3. A broad query: every shard contributes, rows merge incrementally.
	ctx := context.Background()
	rs, err := fed.Stream(ctx, `SELECT DISTINCT ?c WHERE { ?s a ?c }`)
	if err != nil {
		log.Fatal(err)
	}
	classes := 0
	var sample string
	for row := range rs.All() {
		if classes == 0 {
			sample = row["c"].Value
		}
		classes++
	}
	if err := rs.Err(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("federated DISTINCT classes: %d (first: %s)\n", classes, sample)

	// 4. A class-specific query: the extracted indexes prove which shard
	// holds the class, and IndexPrune sends the query only there.
	res, err := fed.Query(ctx, fmt.Sprintf(`SELECT ?s WHERE { ?s a <%s> } LIMIT 5`, sample))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instances of %s: %d rows\n", sample, len(res.Rows))

	// 5. Per-source accounting shows the pruning at work: shards whose
	// index lacks the class record a prune, not a query.
	for _, src := range fed.Sources() {
		st := fed.Stats().Sources[src.URL]
		fmt.Printf("  %-20s queries=%d rows=%-5d pruned=%d firstRow=%s\n",
			src.Name, st.Queries, st.Rows, st.Pruned, st.FirstRow.Round(1000))
	}
}
